"""Recovery: epoch fencing, tier-wide completion, resync, reconcile, reseat.

The crash-recovery layer of the sharded tier (formerly the *recovery* and
*tier-wide recovery passes* sections of the old ``repro/core/sharding.py``
monolith).  One shard's :meth:`ShardRecoveryPart.recover` — or the
module-level :func:`recover_tier` after a whole-tier crash — runs, in
order:

1. local journal rebuild + **epoch bump** + allocator reseat
   (``recover_local``; incoming requests wait on the admission gate
   until the rebuilt tables and the new epoch are durable);
2. :meth:`fence_tier` — install the bumped epoch as a *fence* on every
   peer (durable ``epochs`` row + in-memory map): records and RPCs
   stamped with an older epoch of this shard are now provably dead;
3. :meth:`complete_tier_intents` — resolve every surviving
   intent/prepare/dedup record **whose coordinator is provably dead**
   (epoch below the fence just installed, or — for coordinators this
   recovery cannot fence — whose own shard reports no live process
   driving the transaction).  Records of healthy in-flight operations
   are left alone: their coordinators finish or compensate themselves,
   which is what makes recovery safe to admit into a *live* tier.
   Completion must precede resync: a half-replicated change's surviving
   intent re-broadcasts it, whereas resyncing first would read it as
   divergence and erase both sides;
4. :meth:`~repro.core.shard.rebalance.ShardRebalancePart.restore_overrides`
   and :meth:`resync_skeleton` — **only when the rebuild actually lost
   journaled transactions** (``sync_updates=False`` restores an older
   prefix).  Under the default synchronous journal nothing is lost, the
   replicas already match, and skipping the passes keeps single-shard
   recovery from racing a live peer's in-flight broadcast (the fast
   path a live tier needs);
5. :meth:`reconcile_tier_buckets` — recount placement counters from the
   surviving rows (always safe live: each recount transaction matches
   the rows it sees, and subsequent operations adjust incrementally);
6. a second allocator reseat (completion can re-attach rows that
   travelled inside intent records, invisible to the first reseat).
"""

import itertools

from repro import obs
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, split
from repro.sim.events import Event


class ShardRecoveryPart:
    """Mixin: crash recovery of one shard plus the tier-wide passes."""

    def recover(self):
        """Coroutine: crash/recover this shard, then repair the tier.

        Safe to run against a **live** tier: after the local rebuild this
        shard bumps its durable recovery epoch and installs it as a fence
        on every peer, so the completion pass touches only records whose
        coordinator is provably dead — a healthy peer's in-flight
        cross-shard operation keeps its intent and finishes (or cleanly
        aborts) under its own coordinator, while any still-running
        operation this shard coordinated *before* the crash is fenced at
        its next step (:class:`~repro.core.shard.routing.EpochFenced`)
        and its durable records are rolled forward or back here.  Every
        pass is idempotent — a crash *during* recovery is recovered from
        by simply recovering again.
        """
        tracer = obs.TRACER
        span = None
        if tracer is not None:
            span = tracer.start("recover", f"s{self.shard_id}", self.sim.now,
                                shard=self.shard_id, epoch=self.epoch)
        try:
            lost = yield from self._recovery_pass(
                "local_rebuild", self.recover_local(fence_peers=True))
            dead = {self.shard_id: self.epoch}
            yield from self._recovery_pass(
                "complete_intents", self.complete_tier_intents(dead))
            if lost:
                # Journal loss (async log policy): replicas may genuinely
                # diverge, so repair them.  These passes assume the touched
                # paths are quiescent — with the synchronous journal (the
                # default) they are skipped and recovery never rewrites
                # state a live operation is mid-way through.
                yield from self._recovery_pass(
                    "restore_overrides", self.restore_overrides())
                yield from self._recovery_pass(
                    "restore_partitions", self.restore_partitions())
                yield from self._recovery_pass(
                    "resync_skeleton", self.resync_skeleton())
            yield from self._recovery_pass(
                "reconcile_buckets", self.reconcile_tier_buckets())
            # The completion pass can re-attach rows a rolled-back rename
            # had detached (they travelled inside the intent record,
            # invisible to the first reseat): reseat again against the
            # settled tables.
            yield from self._recovery_pass(
                "reseat_allocators", self.reseat_allocators())
        except BaseException as exc:
            if span is not None:
                tracer.finish(span, self.sim.now,
                              outcome=getattr(exc, "code", None)
                              or type(exc).__name__)
            raise
        if span is not None:
            tracer.finish(span, self.sim.now)
        return lost

    def _recovery_pass(self, name, gen):
        """Run one recovery pass, under a ``recover_pass`` span when
        tracing is on (the pass generator is untouched when off)."""
        if obs.TRACER is None:
            return gen
        return self._traced_recovery_pass(name, gen)

    def _traced_recovery_pass(self, name, gen):
        tracer = obs.TRACER
        if tracer is None:  # disabled between creation and first resume
            result = yield from gen
            return result
        span = tracer.start("recover_pass", name, self.sim.now,
                            shard=self.shard_id, epoch=self.epoch)
        try:
            result = yield from gen
        except BaseException as exc:
            tracer.finish(span, self.sim.now,
                          outcome=getattr(exc, "code", None)
                          or type(exc).__name__)
            raise
        tracer.finish(span, self.sim.now)
        return result

    def recover_local(self, fence_peers=False):
        """Coroutine: rebuild this shard only, keeping its vino stride.

        With ``fence_peers`` (single-shard recovery into a live tier),
        the bumped epoch is installed on every peer before the gate
        reopens.  A whole-tier recovery passes False: its peers are
        conceptually still down — fencing them mid-sequence would write
        (and, under the async journal, checkpoint) their *pre-crash*
        state — and :func:`recover_tier`'s driver installs the full dead
        map once every rebuild is done.

        The admission gate closes for the duration: requests that arrive
        while the journal replays (or before the epoch bump, the tier
        fence and the allocator reseat are done) wait instead of racing
        the rebuild — the moral equivalent of a restarting node not
        serving yet.  The epoch bump is atomic with the start of
        recovery: one durable transaction, before any request is
        admitted, so every operation admitted afterwards captures the
        new epoch; and the fence is installed on every peer *before*
        serving resumes, so a pre-crash ("zombie") operation of this
        shard that was waiting on the gate finds itself fenced at its
        very next stamped transaction.  Recoveries of *different* shards
        may overlap: the recovery control-plane RPCs (fence installs and
        allocator probes) bypass the admission gate
        (:meth:`~repro.core.shard.routing.ShardRoutingPart.
        _recovery_dispatch`), so two shards recovering concurrently
        serve each other's fences instead of deadlocking on their closed
        gates.

        Reentrant crashes of the *same* shard serialize here: a second
        recovery waits for the running one's gate before installing its
        own, so neither can open the other's gate early or strand its
        waiters.
        """
        while self._admission is not None:
            yield self._admission
        self._admission = Event(self.sim)
        try:
            lost = yield from super().recover()
            yield from self._bump_epoch()
            if fence_peers:
                yield from self.fence_tier({self.shard_id: self.epoch})
            yield from self.reseat_allocators()
        finally:
            gate, self._admission = self._admission, None
            gate.succeed()
        return lost

    def promote(self, group):
        """Coroutine: promotion path — this backup becomes its group's
        primary (driven by :meth:`~repro.core.shard.replication.
        ReplicatedShard.failover`).

        Reuses the single-shard recovery sequence minus the journal
        replay: under synchronous shipping the candidate's tables
        already hold every acknowledged record, so there is nothing to
        rebuild — the availability gap is the fencing work alone.
        Behind the admission gate (requests landing mid-promotion wait,
        they are not refused):

        1. bump the group's durable recovery epoch — the ``epochs`` row
           arrived here via log shipping, so the bump continues the
           *group's* epoch sequence, not a member-local one;
        2. install the fence on every other group's primary
           (:meth:`fence_tier`) **and** on the fellow members of this
           group — the latter closes the second zombie door: a dead
           ex-primary that resurrects and ships its divergent journal
           suffix is refused by its own backups' stamp checks, not just
           by tier peers;
        3. reseat the vino/intent allocators against the tier (the
           gate-bypassing probes), since the dead primary may have
           migrated vinos of this class outward mid-flight.

        The tier-wide completion pass for the dead coordinator's records
        runs *after* the gate reopens (see ``failover``): it is cleanup
        the new primary coordinates as a live shard, and keeping it
        outside the outage window keeps the availability gap minimal.
        """
        while self._admission is not None:
            yield self._admission
        self._admission = Event(self.sim)
        tracer, metrics = obs.TRACER, obs.METRICS
        span = None
        ok = False
        # ``marks`` decomposes the gap into promotion sub-steps — one
        # ``(step, sim_time)`` per completed step; both the promote span's
        # events and the ``failover_step_ms.*`` histograms read it.
        marks = [("gate_close", self.sim.now)]
        if tracer is not None:
            span = tracer.start("promote", f"s{self.shard_id}", self.sim.now,
                                shard=self.shard_id, epoch=self.epoch)
        try:
            yield from self._bump_epoch()
            marks.append(("epoch_bump", self.sim.now))
            yield from self.fence_tier({self.shard_id: self.epoch})
            marks.append(("tier_fence", self.sim.now))
            rows = [(self.shard_id, self.epoch)]
            for member in group.members:
                if member is self or member.down:
                    continue
                yield from self._member_call(
                    member, "install_fences", rows)
                marks.append(("member_fence", self.sim.now))
            yield from self.reseat_allocators()
            marks.append(("reseat", self.sim.now))
            ok = True
        finally:
            gate, self._admission = self._admission, None
            gate.succeed()
            marks.append(("gate_open", self.sim.now))
            if span is not None:
                span.events.extend(
                    (name, when, {}) for name, when in marks)
                tracer.finish(span, self.sim.now,
                              outcome="ok" if ok else "error")
            if ok and metrics is not None:
                for (_p, t0), (step, t1) in zip(marks, marks[1:]):
                    metrics.observe(
                        f"failover_step_ms.{step}", self.shard_id, t1 - t0)
        return self.epoch

    def _bump_epoch(self):
        """Coroutine: durably advance this shard's recovery epoch.

        Also reloads the in-memory fence map from the durable ``epochs``
        rows (a restarted node's memory is empty; here the map survives
        the simulated crash, so the reload keeps both honest).
        """

        def body(txn):
            row = txn.read("epochs", self.shard_id)
            nxt = (row["epoch"] if row is not None else 0) + 1
            txn.write("epochs", {"shard": self.shard_id, "epoch": nxt})
            self.epoch = nxt
            self.fences[self.shard_id] = nxt
            for peer_row in txn.match("epochs"):
                if self.fences.get(peer_row["shard"], 0) < peer_row["epoch"]:
                    self.fences[peer_row["shard"]] = peer_row["epoch"]
            return nxt

        epoch = yield from self.dbsvc.execute(body)
        yield from self._force_fence_row()
        return epoch

    def _force_fence_row(self):
        """Coroutine: make the last epoch/fence write durable even under
        the async journal policy.

        Fences are the one write whose durability other shards *rely on*
        ("once a fence commits, no stale record can commit here"), so
        under ``sync_updates=False`` they get an explicit checkpoint —
        otherwise a crash could restore a journal prefix without the row
        while the in-memory map (which survives a simulated crash) runs
        ahead of it.
        """
        if not self.dbsvc.config.sync_updates:
            yield from self.dbsvc.checkpoint()
        return True

    def _fence_body(self, fences):
        """The fence-install transaction: durable row + in-memory map in
        one body, atomic with respect to every stamped coordination
        transaction — once this commits, no older-epoch record of the
        fenced coordinators can commit here."""

        def body(txn):
            for shard, epoch in fences:
                row = txn.read("epochs", shard)
                if row is None or row["epoch"] < epoch:
                    txn.write("epochs", {"shard": shard, "epoch": epoch})
                if self.fences.get(shard, 0) < epoch:
                    self.fences[shard] = epoch
            return True

        return body

    def install_fences(self, fences):
        """RPC (shard-to-shard): fence the given coordinators here.

        ``fences`` is ``[(coordinator_shard, minimum_live_epoch)]``.
        Served through the gate-bypassing recovery dispatch so that
        concurrently recovering (or failing-over) shards can fence each
        other without deadlocking on their closed admission gates.
        """
        yield from self._recovery_dispatch()
        result = yield from self.dbsvc.execute(self._fence_body(fences))
        yield from self._force_fence_row()
        return result

    def fence_tier(self, dead):
        """Coroutine: install ``dead`` (shard -> new epoch) everywhere.

        After this returns, every shard refuses coordination traffic
        stamped with an older epoch of those shards, and any record such
        a coordinator had journaled is provably abandoned — the
        precondition for :meth:`complete_tier_intents` resolving it.
        The local install bypasses the RPC handler (and therefore the
        admission gate): a recovering shard fences itself while still
        not serving.
        """
        rows = sorted(dead.items())
        yield from self.dbsvc.execute(self._fence_body(rows))
        yield from self._force_fence_row()
        peers = [shard for shard in range(self.n_shards)
                 if shard != self.shard_id]
        if self.config.parallel_broadcasts and len(peers) > 1:
            # The fence phase sits inside the admission-gate outage:
            # overlap the installs (max, not sum, of the round trips),
            # exactly like the mirror broadcasts.
            procs = [
                self.sim.process(
                    self._peer(shard, "install_fences", rows),
                    name=f"fence-s{self.shard_id}to{shard}",
                )
                for shard in peers
            ]
            yield self.sim.all_of(procs)
        else:
            for shard in peers:
                yield from self._peer(shard, "install_fences", rows)
        return True

    def reseat_allocators(self):
        """Coroutine: reseat the vino and intent-id allocators.

        Cross-shard renames migrate inodes (with their vinos) to other
        shards, so the local tables alone under-estimate how far this
        shard's allocation class has advanced: the peers are asked for
        their highest vino in this class before the allocator reseats.
        The intent-id allocator reseats the same way (prepare and dedup
        records derived from this shard's ids live on peers).
        """
        base, step = self.shard_id + 1, self.n_shards
        vinos = [row["vino"] for row in self.db.table("inodes").all()]
        top = max(vinos) if vinos else 0
        seq = self._max_local_intent_seq()
        for shard in range(self.n_shards):
            if shard != self.shard_id:
                peak = yield from self._peer(
                    shard, "max_vino_in_class", base, step)
                top = max(top, peak)
                speak = yield from self._peer(
                    shard, "max_intent_seq", f"s{self.shard_id}.")
                seq = max(seq, speak)
        if top >= base:
            base += ((top - base) // step + 1) * step
        self._vino = itertools.count(base, step)
        self._intent_seq = itertools.count(seq + 1)
        return True

    def _max_local_intent_seq(self, prefix=None):
        """Highest intent sequence number with ``prefix`` in this table."""
        prefix = prefix or f"s{self.shard_id}."
        peak = 0
        for row in self.db.table("intents").all():
            base = row["id"].split("@")[0].split("#")[0]
            if base.startswith(prefix):
                try:
                    peak = max(peak, int(base[len(prefix):]))
                except ValueError:
                    pass
        return peak

    def max_vino_in_class(self, base, step):
        """RPC (shard-to-shard): highest local vino ≡ base (mod step)."""
        yield from self._recovery_dispatch()

        def body(txn):
            peak = 0
            for row in txn.match("inodes"):
                vino = row["vino"]
                if vino >= base and (vino - base) % step == 0:
                    peak = max(peak, vino)
            return peak

        peak = yield from self.dbsvc.execute(body)
        return peak

    def max_intent_seq(self, prefix):
        """RPC (shard-to-shard): highest intent seq with ``prefix`` here."""
        yield from self._recovery_dispatch()

        def body(txn):
            return self._max_local_intent_seq(prefix)

        peak = yield from self.dbsvc.execute(body)
        return peak

    # -- tier-wide recovery passes -----------------------------------------

    def resync_skeleton(self):
        """Coroutine: make every skeleton replica match its authority.

        The authoritative copy of the entry at path P lives on the shard
        owning P's parent's entries — the shard that coordinated its
        creation.  A shard that recovered from an older journal prefix
        may be missing newer entries (copy them in) or still hold entries
        whose authority lost them (remove them).  Runs *after* the intent
        completion pass, which already re-broadcast every half-finished
        replication — what remains diverging here is journal loss, and
        the authority's survived prefix is the truth.

        The per-shard ``skeleton_map`` gather is a read-only fan-out;
        with ``config.parallel_broadcasts`` the RPCs overlap (recovery
        latency is max, not sum, of the shard round trips).
        """
        maps = yield from self._gather_maps()
        auth = {}
        every = set()
        for view in maps:
            every.update(view)
        for path in sorted(every, key=lambda p: p.count("/")):
            row = maps[self._owner_of(path)].get(path)
            if row is None:
                continue  # the authority lost it: everyone drops it
            parent, _name = split(path)
            if parent != "/" and parent not in auth:
                continue  # orphaned subtree: its parent is gone
            auth[path] = row
        ordered = sorted(auth, key=lambda p: p.count("/"))
        structural = ("kind", "mode", "uid", "gid", "target")
        for shard in range(self.n_shards):
            local = maps[shard]
            adds, rewrites = [], []
            for path in ordered:
                row = auth[path]
                mine = local.get(path)
                if mine is None or mine["vino"] != row["vino"]:
                    # Missing — or a *different* object reused the path
                    # (divergent histories): replace, don't keep both.
                    adds.append((path, row))
                elif any(mine[f] != row[f] for f in structural):
                    rewrites.append((path, row))
            removes = sorted(
                (path for path, mine in local.items()
                 if path not in auth or auth[path]["vino"] != mine["vino"]),
                key=lambda p: -p.count("/"))
            if adds or removes or rewrites:
                yield from self._call_shard(
                    shard, "skeleton_apply", adds, removes, rewrites)
        return True

    def _gather_maps(self):
        """Coroutine: every shard's skeleton replica, in shard order."""
        if not self.config.parallel_broadcasts or self.n_shards <= 2:
            maps = []
            for shard in range(self.n_shards):
                maps.append(
                    (yield from self._call_shard(shard, "skeleton_map")))
            return maps
        local = yield from self.skeleton_map()
        procs = [
            self.sim.process(
                self._peer(shard, "skeleton_map"),
                name=f"skelmap-s{self.shard_id}to{shard}",
            )
            for shard in range(self.n_shards) if shard != self.shard_id
        ]
        remote = yield self.sim.all_of(procs)
        maps = []
        for shard in range(self.n_shards):
            if shard == self.shard_id:
                maps.append(local)
            else:
                maps.append(remote.pop(0))
        return maps

    def skeleton_map(self):
        """RPC (shard-to-shard): this shard's skeleton replica by path."""
        yield from self._dispatch()

        def body(txn):
            view = {}
            frontier = [("", self.root_vino)]
            while frontier:
                dir_path, dvino = frontier.pop()
                for dentry in txn.index_read("dentries", "parent", dvino):
                    if dentry.get("home") is not None:
                        continue
                    if dentry.get("staged") is not None:
                        # A mid-flip alias is transient by design, not
                        # divergence: resync must neither copy it to
                        # peers nor strip it here (the flip's own
                        # retire/abort owns its lifecycle).
                        continue
                    row = txn.read("inodes", dentry["vino"])
                    if row is None or row["kind"] == FILE:
                        continue
                    path = f"{dir_path}/{dentry['name']}"
                    view[path] = dict(row)
                    if row["kind"] == DIRECTORY:
                        frontier.append((path, row["vino"]))
            return view

        view = yield from self.dbsvc.execute(body)
        return view

    def skeleton_apply(self, adds, removes, rewrites):
        """RPC (shard-to-shard): reshape this replica to the authority.

        ``removes`` (deepest first) drop stale skeleton entries — along
        with any local file entries under a dropped directory, which are
        unreachable once the directory is gone everywhere.  ``adds``
        (shallowest first) copy in authoritative rows.  ``rewrites``
        overwrite same-vino rows whose attributes diverged (a lost
        setattr broadcast).  Directory link counts are recomputed from
        the final dentry set afterwards — authoritative rows already
        count children the same apply may add or remove, so incremental
        bookkeeping would double-count.  One transaction: a crash
        mid-resync leaves the old replica, and the next recovery resyncs
        again.
        """
        yield from self._dispatch()

        def body(txn):
            for path in removes:
                try:
                    parent, name = self._txn_resolve_parent(txn, path)
                except FsError:
                    continue
                dentry = txn.read("dentries", (parent["vino"], name))
                if dentry is None:
                    continue
                self._invalidate_resolve(parent["vino"])
                txn.delete("dentries", (parent["vino"], name))
                row = txn.read("inodes", dentry["vino"])
                if row is not None:
                    if row["kind"] == DIRECTORY:
                        for child in txn.index_read(
                                "dentries", "parent", row["vino"]):
                            txn.delete("dentries", child["key"])
                            crow = txn.read("inodes", child["vino"])
                            if crow is not None and crow["kind"] == FILE \
                                    and child.get("home") is None:
                                txn.delete("inodes", crow["vino"])
                                if crow["upath"]:
                                    self._txn_bucket_adjust(
                                        txn, crow["upath"], -1)
                        self._invalidate_resolve(row["vino"])
                    txn.delete("inodes", row["vino"])
            for path, auth_row in adds:
                try:
                    parent, name = self._txn_resolve_parent(txn, path)
                except FsError:
                    continue
                if txn.read("dentries", (parent["vino"], name)) is not None:
                    continue
                txn.write("inodes", dict(auth_row))
                self._invalidate_resolve(parent["vino"])
                txn.insert("dentries", {
                    "key": (parent["vino"], name), "parent": parent["vino"],
                    "name": name, "vino": auth_row["vino"],
                })
            for _path, auth_row in rewrites:
                txn.write("inodes", dict(auth_row))
            self._txn_fix_dir_nlinks(txn)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def _txn_fix_dir_nlinks(self, txn):
        """Recompute every directory's nlink (2 + subdirectories) from
        the transaction's final dentry set."""
        for row in txn.match("inodes"):
            if row["kind"] != DIRECTORY:
                continue
            subdirs = 0
            for dentry in txn.index_read("dentries", "parent", row["vino"]):
                if dentry.get("home") is not None:
                    continue
                if dentry.get("staged") is not None:
                    continue  # an alias is not a second child
                child = txn.read("inodes", dentry["vino"])
                if child is not None and child["kind"] == DIRECTORY:
                    subdirs += 1
            if row["nlink"] != 2 + subdirs:
                fixed = dict(row)
                fixed["nlink"] = 2 + subdirs
                txn.write("inodes", fixed)

    def complete_tier_intents(self, dead=None):
        """Coroutine: resolve abandoned coordination records tier-wide.

        Three idempotent passes: (A) every coordinator intent is rolled
        forward (its prepare record exists → the operation committed) or
        back; (B) surviving prepare records — their coordinator already
        committed and dropped its intent — redo their post-commit side
        effects (dedup-guarded) and retire; (C) dedup records whose
        operation is fully resolved are garbage-collected.  A crash at
        any point leaves records a re-run resolves the same way.

        A record is touched only when its coordinator is **provably
        dead**: its epoch is below the fence in ``dead`` (shard → fenced
        epoch, the set this recovery just installed), or — when the
        coordinator shard is not in ``dead`` (it never crashed) — that
        shard answers that no live process is driving the transaction
        any more (``tid_live``).  A live in-flight operation on a healthy
        peer is therefore never aborted under its coordinator; with no
        ``dead`` map (legacy quiesced call) only the liveness probe
        applies.
        """
        if dead is None:
            dead = {}
        abandoned = {}  # base tid -> (verdict, by_epoch), cached per pass
        records = yield from self._gather_intents()
        parts = {rec["id"]: shard for shard, rec in records
                 if rec["role"] == "part"}
        for shard, rec in records:
            if rec["role"] != "coord":
                continue
            verdict, by_epoch = yield from self._abandoned(
                rec, dead, abandoned)
            if not verdict:
                continue  # a live coordinator still owns this operation
            if not by_epoch:
                # Dead by the liveness probe only: the gather's snapshot
                # may be stale — the coordinator could have progressed
                # (and died) after it — so re-read the records the
                # decision hinges on.  Once dead, nothing can change
                # them (its in-flight handlers died with its process).
                # An epoch-dead coordinator was fenced *before* the
                # gather, so its snapshot is provably fresh and the
                # whole-tier path pays no extra round trips.
                if not (yield from self._call_shard(
                        shard, "has_record", rec["id"])):
                    continue  # resolved/completed since the gather
            if rec["op"] == "rename":
                pid = self._part_id(rec["id"])
                if by_epoch:
                    committed = pid in parts
                else:
                    committed = (yield from self._find_record(pid)) \
                        is not None
                yield from self._call_shard(
                    shard, "finish_rename_intent", rec, committed)
            elif rec["op"] == "link":
                # The intent is deleted atomically with the commit, so
                # its survival means abort: revert the bump if it landed.
                pid = self._part_id(rec["id"])
                if by_epoch:
                    pshard = parts.get(pid)
                else:
                    pshard = yield from self._find_record(pid)
                if pshard is not None:
                    yield from self._call_shard(
                        pshard, "link_abort", rec["id"], rec["now"],
                        self._stamp())
                yield from self._call_shard(
                    shard, "intent_forget", rec["id"])
            else:
                yield from self._call_shard(shard, "redo_intent", rec)
        records = yield from self._gather_intents()
        abandoned.clear()  # liveness can change between passes: re-probe
        for shard, rec in records:
            if rec["role"] != "part":
                continue
            verdict, _by_epoch = yield from self._abandoned(
                rec, dead, abandoned)
            if not verdict:
                continue
            if rec["op"] == "rename":
                yield from self._call_shard(shard, "redo_rename_part", rec)
            else:  # a committed link's prepare record: the bump stands
                yield from self._call_shard(shard, "intent_forget",
                                            rec["id"])
        records = yield from self._gather_intents()
        abandoned.clear()
        open_ids = {rec["id"].split("@")[0].split("#")[0]
                    for _shard, rec in records if rec["role"] != "dedup"}
        for shard, rec in records:
            if rec["role"] != "dedup":
                continue
            if rec["id"].split("#")[0] in open_ids:
                continue  # its operation's records are still being settled
            verdict, _by_epoch = yield from self._abandoned(
                rec, dead, abandoned)
            if verdict:
                yield from self._call_shard(shard, "intent_forget",
                                            rec["id"])
        return True

    def _abandoned(self, rec, dead, cache):
        """Coroutine: ``(dead?, by_epoch?)`` for this record's coordinator.

        Dead by epoch — the record is stamped below the fence in
        ``dead`` — or, for a coordinator shard that never crashed, dead
        by the shard's own testimony that no live process drives the
        transaction (``tid_live``); only an injected mid-operation kill
        leaves records that way, and those are fair game exactly as
        under the old quiesced-tier assumption.  ``by_epoch`` tells the
        caller whether the verdict predates the gather (fence installed
        first — snapshot provably fresh) or needs freshness re-reads.
        Verdicts are cached per base tid for one pass (all of an
        operation's records carry the same coordinator epoch).
        """
        base = rec["id"].split("@")[0].split("#")[0]
        cached = cache.get(base)
        if cached is not None:
            return cached
        coord = self._coord_of(base)
        fence = dead.get(coord)
        if fence is not None:
            cached = (rec.get("epoch", 0) < fence, True)
        elif coord == self.shard_id:
            cached = (base not in self._live_tids, False)
        else:
            alive = yield from self._peer(coord, "tid_live", base)
            cached = (not alive, False)
        cache[base] = cached
        return cached

    def finish_rename_intent(self, rec, committed):
        """RPC (shard-to-shard): resolve a cross-shard rename intent here.

        Committed (the destination holds the prepare record): retire the
        source residue the dual-residence detach left behind — the
        retiring-marked ghost dentry, the full move's inode copy, the
        deferred parent-time bump — atomically with the intent.  Aborted:
        clear the retiring marker (or re-attach the old name from the
        intent's payload if the ghost is gone) atomically with the
        intent's deletion.  Both paths reuse the coordinator's own
        record-guarded transactions, so racing or repeating them is safe.
        """
        yield from self._dispatch()
        if committed:
            result = yield from self._retire_rename_src(
                rec["id"], rec["old"], rec["row"], rec["stub"], rec["now"])
        else:
            result = yield from self._rename_rollback(
                rec["id"], rec["old"], rec["row"], rec["stub"], rec["now"])
        return result

    def redo_intent(self, rec):
        """RPC (shard-to-shard): roll a coordinator intent forward here.

        Every redo is idempotent (mirror replays no-op when already
        applied; link drops are dedup-guarded; the rebalance migration
        converges), so the record is deleted only after its effects are
        re-applied.  The record's continued existence is re-checked
        first: the gather's snapshot may be stale — a *live* coordinator
        can finish (and retire) the operation between the gather and the
        liveness probe that judged it dead, and redoing from the stale
        snapshot would re-apply drops whose dedup guards the finished
        operation already collected.
        """
        if not (yield from self.has_record(rec["id"])):
            return False
        op = rec["op"]
        stamp = self._stamp()  # redo acts under the current (live) epoch
        if op == "mirror":
            yield from self._broadcast(rec["mirror"], *rec["args"])
            yield from self.intent_forget(rec["id"])
        elif op == "rename_post":
            pending = [tuple(p) for p in rec["pending"]]
            yield from self._drain_pending(
                pending, rec["now"], rec["id"], stamp)
            if rec["replaced_symlink"]:
                yield from self._broadcast(
                    "mirror_unlink", rec["new"], rec["now"])
            yield from self.intent_forget(rec["id"])
            yield from self._forget_dedups(rec["id"], pending)
        elif op == "rename_replicated":
            pending = [tuple(p) for p in rec["pending"]]
            yield from self._drain_pending(
                pending, rec["now"], rec["id"], stamp)
            yield from self._broadcast(
                "mirror_rename", rec["old"], rec["new"], rec["now"],
                rec.get("seq", rec["now"]), rec["vino"])
            if rec["kind"] == DIRECTORY:
                yield from self._migrate_renamed_subtree(
                    rec["vino"], rec["old"], rec["new"], rec["now"], stamp)
            yield from self.intent_forget(rec["id"])
            yield from self._forget_dedups(rec["id"], pending)
        elif op == "rename_flip":
            # The flip record survived ⟺ its commit transaction (which
            # deletes it) never ran: abort — unstage the alias everywhere
            # and drop the partition-map alias keys.
            yield from self.redo_flip(rec)
        elif op == "unlink_stub":
            dedup = self._dedup_id(rec["id"], rec["vino"])
            yield from self._peer(
                rec["home"], "unlink_vino", rec["vino"], rec["now"], dedup,
                stamp)
            yield from self.intent_forget(rec["id"])
            yield from self._peer(rec["home"], "intent_forget", dedup)
        elif op == "rebalance":
            yield from self.redo_rebalance(rec)
        elif op == "split":
            yield from self.redo_split(rec)
        elif op == "stage":
            yield from self.redo_stage(rec)
        elif op == "forget_override":
            yield from self.redo_forget_override(rec)
        return True

    def retire_rename_part(self, tid, stamp=None):
        """RPC (shard-to-shard): drop a committed install's prepare record
        and then its dedup guards (in that order: a crash in between
        leaves only garbage the completion pass collects)."""
        yield from self._dispatch()
        pid = self._part_id(tid)

        def body(txn):
            self._check_stamp(stamp)
            rec = txn.read("intents", pid)
            if rec is None:
                return None
            txn.delete("intents", pid)
            return [tuple(p) for p in rec["pending"]]

        pending = yield from self.dbsvc.execute(body)
        if pending:
            yield from self._forget_dedups(tid, pending)
        return True

    def redo_rename_part(self, rec):
        """RPC (shard-to-shard): redo a committed install's side effects.

        The prepare record survives only when the coordinator committed
        but the forget never arrived; the drains are dedup-guarded and
        the symlink-replica removal idempotent, so redoing is safe.  The
        record is deleted before its dedup guards so a crash between the
        deletions leaves only garbage pass C collects.  As in
        :meth:`redo_intent`, a record retired since the gather's
        snapshot (its coordinator finished live) is left alone.
        """
        if not (yield from self.has_record(rec["id"])):
            return False
        pending = [tuple(p) for p in rec["pending"]]
        tid = rec["id"].rsplit("@", 1)[0]
        yield from self._drain_pending(
            pending, rec["now"], tid, self._stamp())
        if rec["replaced_symlink"]:
            yield from self._broadcast(
                "mirror_unlink", rec["new"], rec["now"])
        yield from self.intent_forget(rec["id"])
        yield from self._forget_dedups(tid, pending)
        return True

    def reconcile_tier_buckets(self):
        """Coroutine: recount placement counters on every shard."""
        for shard in range(self.n_shards):
            yield from self._call_shard(shard, "reconcile_buckets")
        return True

    def reconcile_buckets(self):
        """RPC (shard-to-shard): recount this shard's placement counters
        from its surviving file rows (counters travel with inode rows;
        a crash between a migration's transactions can leave them a step
        behind — the recount is the authoritative repair)."""
        yield from self._dispatch()

        def body(txn):
            want = {}
            for row in txn.match("inodes"):
                if row["kind"] == FILE and row["upath"]:
                    bucket, _slash, _leaf = row["upath"].rpartition("/")
                    want[bucket] = want.get(bucket, 0) + 1
            changed = 0
            for brow in txn.match("buckets"):
                target = want.pop(brow["path"], 0)
                if brow["count"] != target:
                    fixed = dict(brow)
                    fixed["count"] = target
                    txn.write("buckets", fixed)
                    changed += 1
            for path, count in want.items():
                txn.write("buckets", {"path": path, "count": count})
                changed += 1
            return changed

        result = yield from self.dbsvc.execute(body)
        return result


# ---------------------------------------------------------------------------
# Tier-wide crash recovery
# ---------------------------------------------------------------------------

def recover_tier(shards):
    """Coroutine: recover a whole crashed tier.

    Rebuilds *every* shard from its durable journal prefix first — a
    whole-tier power failure leaves no live peer to ask — then runs the
    tier-wide repair passes exactly once, driven by shard 0.  Every shard
    bumped its epoch during its local rebuild, so the whole tier is in
    the ``dead`` set: the completion pass resolves *all* surviving
    records, exactly the old quiesced-tier behavior (nothing can be in
    flight after a tier-wide power failure).  The skeleton resync runs
    only when some journal actually lost transactions — with the default
    synchronous log the replicas already match and the resync pass is
    pure fan-out cost (the ``recover_tier`` fast path).  Single-shard
    crashes use :meth:`ShardRecoveryPart.recover`, which runs the fenced
    passes against the surviving peers' live tables.
    """
    driver = shards[0]
    tracer = obs.TRACER
    span = None
    if tracer is not None:
        span = tracer.start("recover", "tier", driver.sim.now,
                            shard=driver.shard_id, epoch=driver.epoch)
    try:
        lost = 0
        for shard in shards:
            lost += yield from driver._recovery_pass(
                f"local_rebuild_s{shard.shard_id}", shard.recover_local())
        dead = {shard.shard_id: shard.epoch for shard in shards}
        yield from driver._recovery_pass(
            "fence_tier", driver.fence_tier(dead))
        yield from driver._recovery_pass(
            "complete_intents", driver.complete_tier_intents(dead))
        yield from driver._recovery_pass(
            "restore_overrides", driver.restore_overrides())
        yield from driver._recovery_pass(
            "restore_partitions", driver.restore_partitions())
        if lost:
            yield from driver._recovery_pass(
                "resync_skeleton", driver.resync_skeleton())
        yield from driver._recovery_pass(
            "reconcile_buckets", driver.reconcile_tier_buckets())
        for shard in shards:
            # intent completion may have re-attached rows that travelled
            # inside intent records; reseat against the settled tables.
            yield from shard.reseat_allocators()
    except BaseException as exc:
        if span is not None:
            tracer.finish(span, driver.sim.now,
                          outcome=getattr(exc, "code", None)
                          or type(exc).__name__)
        raise
    if span is not None:
        tracer.finish(span, driver.sim.now)
    return lost
