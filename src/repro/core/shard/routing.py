"""Routing: partitioning policies, the client router, and forwards.

This module is the "where does this operation belong" layer of the sharded
tier (formerly the *Partitioning policies*, *Client-side router*, *shard
arithmetic*, *peer communication*, *resolution hooks* and *forwarded
single-path handlers* sections of the old ``repro/core/sharding.py``
monolith):

- :class:`ShardingPolicy` / :class:`HashDirSharding` /
  :class:`SubtreeSharding` — the partition function (which shard owns a
  directory's entries), now with an *override map* consulted first: the
  online re-balancer (:mod:`repro.core.shard.rebalance`) re-homes hot
  directories by installing overrides, so the base policy stays static
  while ownership follows load.
- :class:`ShardRouter` — the client-side replacement for the single-target
  :class:`~repro.core.metadriver.MetadataDriver`, routing each op by path
  (or learned vino home), and keeping per-shard / per-directory load
  counters the re-balancer samples.
- :class:`ResolveForward` / :class:`VinoForward` — control-flow exceptions
  a shard raises when a walk crosses onto another shard.
- :class:`ShardRoutingPart` — the service-side mixin: shard arithmetic,
  peer RPC plumbing, the resolution hooks that raise forwards, and every
  read-only forwarded handler (getattr/readdir/readlink/open_map, the
  vino-addressed ops, close_sync chasing, peer queries).
"""

import hashlib

from repro import obs
from repro.core.metadriver import MetadataDriver
from repro.core.metaservice import _MAX_SYMLINK_DEPTH
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, normalize, split


class ResolveForward(Exception):
    """Control flow: continue this operation on ``shard`` at ``path``.

    ``final`` marks a forward to the shard that *authoritatively* owns
    the missing component's enclosing directory: the redispatch target
    must not be re-derived from the path (that would bounce the op right
    back to the shard that raised the forward).
    """

    def __init__(self, shard, path, final=False):
        super().__init__(shard, path)
        self.shard = shard
        self.path = path
        self.final = final


class VinoForward(Exception):
    """Control flow: the leaf's inode lives on ``shard`` under ``vino``."""

    def __init__(self, shard, vino):
        super().__init__(shard, vino)
        self.shard = shard
        self.vino = vino


class EpochFenced(FsError):
    """A coordination request carried an epoch a recovery has fenced off.

    Raised by a participant when a coordinator's stamp — or by a
    coordinator's own transaction when its captured epoch — is older than
    the fence a recovery installed for that shard.  Subclasses
    :class:`FsError` (errno ``EAGAIN``) so every existing compensation
    path treats it as a clean abort; a client seeing it may simply retry
    (the retried operation captures the current epoch).
    """

    def __init__(self, coord, epoch, fence):
        super().__init__(
            "EAGAIN",
            f"coordinator s{coord} epoch {epoch} fenced below {fence}")
        self.coord = coord
        self.epoch = epoch
        self.fence = fence


class MemberDown(FsError):
    """The targeted replica-group member is dead (or partitioned away).

    Raised at the dispatch edge of a killed member: a crashed node
    refuses new requests outright.  Subclasses :class:`FsError` with
    errno ``EAGAIN`` so every coordination compensation path treats it
    as a clean abort; the router reacts by driving (or awaiting) the
    group's failover and retrying against the promoted primary.
    """

    def __init__(self, shard):
        super().__init__("EAGAIN", f"shard s{shard}: member is down")
        self.shard = shard


# ---------------------------------------------------------------------------
# Partitioning policies
# ---------------------------------------------------------------------------

def entry_slot(name, fanout):
    """Which of ``fanout`` partition slots entry ``name`` hashes to.

    Depends only on the entry's *name* — never on the directory's path —
    so a split directory can be renamed without moving a single entry.
    The split protocol uses the same function to decide what moves where,
    so routing and placement can never disagree.
    """
    digest = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % fanout


class ShardingPolicy:
    """Interface: which shard owns the entries of a directory.

    ``overrides`` maps a normalized directory path to the shard the online
    re-balancer re-homed it to; it is consulted before the base partition
    function.  ``partitions`` maps a normalized directory path to the
    tuple of shards its entries are *hash-partitioned* across (GIGA+-
    style): when present it supersedes the whole-directory rule, and each
    entry routes by the hash of its own name.  Both maps are shared by
    every router and shard of one stack (modeling the small replicated
    routing table a real tier pushes to its clients); the durable copies
    live in each shard's ``overrides`` / ``partitions`` tables and are
    restored on recovery (see :mod:`repro.core.shard.rebalance`).
    """

    def __init__(self):
        self.overrides = {}
        self.partitions = {}

    def shard_of_dir(self, dir_path, n_shards):
        """The shard (int in ``range(n_shards)``) owning ``dir_path``'s
        entries."""
        if n_shards <= 1:
            return 0
        norm = normalize(dir_path)
        override = self.overrides.get(norm)
        if override is not None:
            return override % n_shards
        return self._base_shard(norm, n_shards)

    def shard_of_entry(self, dir_path, name, n_shards):
        """The shard owning entry ``name`` of directory ``dir_path``.

        A split directory routes each entry by the hash of its *name*
        (path-independent, so renaming the directory re-keys the map but
        never moves an entry); an unsplit directory falls back to the
        whole-directory rule.  Pure in-memory arithmetic — zero simulated
        cost, exactly like :meth:`shard_of_dir`.
        """
        if n_shards <= 1:
            return 0
        fanout = self.partitions.get(normalize(dir_path))
        if fanout:
            return fanout[entry_slot(name, len(fanout))] % n_shards
        return self.shard_of_dir(dir_path, n_shards)

    def entry_shards(self, dir_path, n_shards):
        """Every shard that may own entries of ``dir_path`` (fan-out set).

        ``(owner,)`` for an unsplit directory; the de-duplicated partition
        tuple for a split one.  readdir fans out over this set, and rmdir
        consults each member for emptiness.
        """
        if n_shards <= 1:
            return (0,)
        fanout = self.partitions.get(normalize(dir_path))
        if fanout:
            seen = []
            for shard in fanout:
                shard %= n_shards
                if shard not in seen:
                    seen.append(shard)
            return tuple(seen)
        return (self.shard_of_dir(dir_path, n_shards),)

    def static_shard_of_dir(self, dir_path, n_shards):
        """The shard the *static* rule names, ignoring any override.

        The explicit bypass the forget-override protocol needs: it must
        know where a directory's entries go once the override is gone,
        while the override is still installed.
        """
        if n_shards <= 1:
            return 0
        return self._base_shard(normalize(dir_path), n_shards)

    def _base_shard(self, norm, n_shards):
        """The static partition function over a normalized path."""
        raise NotImplementedError


class HashDirSharding(ShardingPolicy):
    """Hash-by-parent-directory (HopsFS-style).

    Entries of one directory always co-locate; distinct directories spread
    uniformly, so workloads touching many directories scale with shards.
    """

    def _base_shard(self, norm, n_shards):
        digest = hashlib.blake2b(norm.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") % n_shards


class SubtreeSharding(ShardingPolicy):
    """Static subtree partitioning: longest matching prefix wins.

    ``assignments`` maps a directory prefix to a shard; everything below it
    (unless a longer rule overrides) is served there.  Unmatched paths fall
    to ``default``.  This is the administrator-controlled alternative to
    hashing: whole projects stay on one shard.
    """

    def __init__(self, assignments, default=0):
        super().__init__()
        self.rules = sorted(
            ((normalize(prefix), int(shard))
             for prefix, shard in dict(assignments).items()),
            key=lambda rule: len(rule[0]), reverse=True,
        )
        self.default = default

    def _base_shard(self, norm, n_shards):
        for prefix, shard in self.rules:
            if norm == prefix or prefix == "/" \
                    or norm.startswith(prefix + "/"):
                return shard % n_shards
        return self.default % n_shards


# ---------------------------------------------------------------------------
# Client-side router
# ---------------------------------------------------------------------------

class ShardRouter:
    """Routes each metadata op to the shard owning its leaf's directory.

    Drop-in replacement for a single :class:`MetadataDriver`: exposes the
    same ``call(method, *args)`` coroutine.  With one shard it degenerates
    to a pure pass-through (zero simulated and zero accounting difference),
    which is what keeps 1-shard stacks byte-identical to the pre-sharding
    system.

    The router also keeps *load counters* — ops per shard and ops per
    target directory — as pure Python bookkeeping (no simulated cost).
    They are the sampling source for
    :class:`repro.core.shard.rebalance.Rebalancer`: the router is the one
    place that already computes the (directory → shard) decision for every
    op, so counting here attributes load to the unit the re-balancer can
    actually move.
    """

    #: methods whose first argument is a path routed by its parent dir.
    _LEAF_OPS = frozenset({
        "getattr", "create_node", "setattr", "unlink", "rmdir",
        "readlink", "open_map",
    })

    #: read-only methods a replica group's in-sync backup may serve
    #: (follower reads; open_map is excluded — it flips delegation).
    _FOLLOWER_OPS = frozenset({"getattr", "readlink", "readdir"})

    #: retry budget for a group call that hits a dead member (each retry
    #: first drives/awaits the failover of any group with a dead primary).
    _FAILOVER_RETRIES = 4

    def __init__(self, machine, shard_machines, config, sharding,
                 groups=None):
        self.machine = machine
        self.config = config
        self.sharding = sharding
        self.groups = groups
        if groups is None:
            self.drivers = [
                MetadataDriver(machine, m, config) for m in shard_machines
            ]
            self.n_shards = len(self.drivers)
        else:
            # Replicated tier: one driver per group *member*; each call
            # re-resolves the group's current primary (or an in-sync
            # follower for reads), so a failover transparently re-targets
            # without touching the routing logic above.
            self._member_drivers = [
                {member: MetadataDriver(machine, member.machine, config)
                 for member in group.members}
                for group in groups
            ]
            self.drivers = None
            self.n_shards = len(groups)
        self._vino_shard = {}  # vino -> home shard (learned from views)
        self.op_loads = [0] * self.n_shards
        self.dir_loads = {}    # normalized dir path -> op count

    @property
    def calls(self):
        if self.groups is None:
            return sum(driver.calls for driver in self.drivers)
        return sum(driver.calls
                   for drivers in self._member_drivers
                   for driver in drivers.values())

    # -- replica-group targeting ------------------------------------------

    def _primary_driver(self, shard):
        return self._member_drivers[shard][self.groups[shard].primary]

    def _read_driver(self, shard):
        """Driver for a read-only op: an in-sync follower when allowed.

        Follower reads are bounded-staleness: a backup serves only while
        its applied LSN lags the group head by at most
        ``config.follower_staleness`` records (0 = fully caught up, which
        under synchronous shipping means the read is current).
        """
        group = self.groups[shard]
        member = None
        if self.config.follower_reads:
            member = group.follower_for_read(self.config.follower_staleness)
        if member is None:
            member = group.primary
        return self._member_drivers[shard][member]

    def _call_group(self, shard, method, args, read_only=False):
        """Coroutine: call a group; drive failover + retry on dead members.

        ``EAGAIN`` covers both a dead member's refusal
        (:class:`MemberDown`) and a coordinator that tripped over one
        mid-protocol and cleanly aborted (:class:`EpochFenced` / abort
        compensation).  Either way the cure is the same: make sure every
        group with a dead primary has failed over, then retry — the
        retried operation captures the promoted primary and its fresh
        epoch.
        """
        group = self.groups[shard]
        for attempt in range(self._FAILOVER_RETRIES + 1):
            member = None
            if read_only and self.config.follower_reads:
                member = group.follower_for_read(
                    self.config.follower_staleness)
            follower = member is not None
            if member is None:
                member = group.primary
            driver = self._member_drivers[shard][member]
            tracer = obs.TRACER
            span = None
            if tracer is not None:
                span = tracer.start(
                    "group_rpc", method, self.machine.sim.now, shard=shard,
                    epoch=member.epoch, attempt=attempt,
                    member=member.member_index,
                    role="backup" if follower else "primary")
            if follower and obs.METRICS is not None:
                obs.METRICS.incr("follower_reads", shard)
                obs.METRICS.observe(
                    "follower_staleness", shard,
                    group.lsn - group.acked[member])
            try:
                result = yield from driver.call(method, *args)
                if span is not None:
                    tracer.finish(span, self.machine.sim.now)
                return result
            except FsError as exc:
                if span is not None:
                    tracer.finish(span, self.machine.sim.now,
                                  outcome=exc.code)
                if exc.code != "EAGAIN" or attempt == self._FAILOVER_RETRIES:
                    raise
                if obs.METRICS is not None:
                    obs.METRICS.incr("router_retry", shard)
                for other in self.groups:
                    if other.primary.down:
                        yield from other.ensure_failover()
            except BaseException as exc:
                if span is not None:
                    tracer.finish(span, self.machine.sim.now,
                                  outcome=type(exc).__name__)
                raise

    def shard_for_dir(self, dir_path):
        return self.sharding.shard_of_dir(dir_path, self.n_shards)

    def shard_for_leaf(self, path):
        parent, name = split(path)
        return self.sharding.shard_of_entry(parent, name, self.n_shards)

    def call(self, method, *args):
        """Coroutine: one (possibly fanned-out) metadata RPC."""
        if self.n_shards == 1 and self.groups is None:
            if obs.TRACER is None and obs.METRICS is None:
                return self.drivers[0].call(method, *args)
            return self._observed(
                self.drivers[0].call(method, *args), method, 0)
        if method == "statfs":
            shard = None
            coro = self._statfs()
        elif method == "close_sync":
            shard = self._vino_shard.get(args[0], 0)
            self._note_load(shard, None)
            if self.groups is not None:
                coro = self._call_group(shard, method, args)
            else:
                coro = self.drivers[shard].call(method, *args)
        else:
            fanout = None
            if method == "readdir":
                dir_path = normalize(args[0])
                owners = self.sharding.entry_shards(dir_path, self.n_shards)
                shard = owners[0]
                if len(owners) > 1:
                    fanout = owners
            elif method == "rename":
                dir_path, name = split(args[0])
                shard = self.sharding.shard_of_entry(
                    dir_path, name, self.n_shards)
            elif method == "link":
                dir_path, name = split(args[1])
                shard = self.sharding.shard_of_entry(
                    dir_path, name, self.n_shards)
            elif method in self._LEAF_OPS:
                dir_path, name = split(args[0])
                shard = self.sharding.shard_of_entry(
                    dir_path, name, self.n_shards)
            else:
                dir_path = None
                shard = 0
            self._note_load(shard, dir_path)
            if fanout is not None:
                coro = self._readdir_fanout(fanout, args)
            else:
                coro = self._tracked(shard, method, args)
        if obs.TRACER is None and obs.METRICS is None:
            return coro
        return self._observed(coro, method, shard)

    def _observed(self, coro, method, shard):
        """Coroutine: run one client op under a ``client_op`` span.

        Pure Python bookkeeping around the inner coroutine — the same
        zero-simulated-cost discipline as :meth:`_note_load` (no events,
        no yields of its own, no sequence numbers).
        """
        tracer, metrics = obs.TRACER, obs.METRICS
        sim = self.machine.sim
        start = sim.now
        span = None
        if tracer is not None:
            span = tracer.start("client_op", method, start, shard=shard)
        try:
            result = yield from coro
        except FsError as exc:
            if span is not None:
                tracer.finish(span, sim.now, outcome=exc.code)
            if metrics is not None:
                metrics.observe(f"op_ms.{method}", shard, sim.now - start)
            raise
        except BaseException as exc:
            if span is not None:
                tracer.finish(span, sim.now, outcome=type(exc).__name__)
            raise
        if span is not None:
            tracer.finish(span, sim.now)
        if metrics is not None:
            metrics.observe(f"op_ms.{method}", shard, sim.now - start)
        return result

    #: bound on learned vino homes; overflow clears (close_sync then
    #: falls back to shard 0 and the service fans out on a miss).
    _VINO_MAP_MAX = 4096

    #: bound on per-directory load counters; overflow keeps the hot half
    #: so sustained skew survives the trim.
    _DIR_LOADS_MAX = 8192

    def _note_load(self, shard, dir_path):
        """Count one op against its shard and (when known) its directory."""
        self.op_loads[shard] += 1
        if dir_path is None:
            return
        loads = self.dir_loads
        if len(loads) >= self._DIR_LOADS_MAX and dir_path not in loads:
            hot = sorted(loads.items(), key=lambda kv: (-kv[1], kv[0]))
            loads.clear()
            loads.update(hot[:self._DIR_LOADS_MAX // 2])
        loads[dir_path] = loads.get(dir_path, 0) + 1

    def reset_loads(self):
        """Forget the sampled load entirely (tests, cold restarts)."""
        self.op_loads = [0] * self.n_shards
        self.dir_loads = {}

    def decay_loads(self, factor=0.5):
        """Age the sampled load (after a re-balancing round).

        Decaying instead of resetting keeps a *persistent* hotspot
        visible to the very next planning round: a cold counter right
        after a snapshot would make the re-balancer blind until a full
        sampling window refills it, while stale one-off spikes still
        fade geometrically.  Directories whose aged count rounds to zero
        are dropped so the map never grows without bound.
        """
        self.op_loads = [int(count * factor) for count in self.op_loads]
        self.dir_loads = {
            path: aged for path, count in self.dir_loads.items()
            if (aged := int(count * factor)) > 0
        }

    def _readdir_fanout(self, owners, args):
        """Coroutine: merged readdir over a split directory's partitions.

        Each partition shard lists only its *local* entries
        (``readdir_shard``); the union dedups the replicated skeleton
        names and any entry a migration transiently left on two shards,
        so every name appears exactly once in the merged listing.
        """
        names = set()
        for shard in owners:
            part = yield from self._tracked(shard, "readdir_shard", args)
            names.update(part)
        return sorted(names)

    def _tracked(self, shard, method, args):
        """Coroutine: call one shard; learn vino homes from returned views."""
        if self.groups is None:
            view = yield from self.drivers[shard].call(method, *args)
        else:
            view = yield from self._call_group(
                shard, method, args,
                read_only=method in self._FOLLOWER_OPS)
        if type(view) is dict and "vino" in view:
            if len(self._vino_shard) >= self._VINO_MAP_MAX:
                self._vino_shard.clear()
            self._vino_shard[view["vino"]] = view.get("shard", shard)
        return view

    def _statfs(self):
        """Coroutine: namespace stats aggregated across every shard.

        The replicated skeleton (directories, symlinks) is counted once
        via shard 0's totals; files sum across shards.
        """
        merged = None
        files = 0
        for shard in range(self.n_shards):
            if self.groups is None:
                stats = yield from self.drivers[shard].call("statfs")
            else:
                stats = yield from self._call_group(shard, "statfs", ())
            if merged is None:
                merged = dict(stats)
            files += stats["files"]
        # shard 0's inode count covers the whole skeleton plus its own
        # files; the other shards contribute only their files.
        merged["inodes"] = merged["inodes"] + files - merged["files"]
        merged["files"] = files
        return merged

    def call_all(self, method, *args):
        """Coroutine: invoke ``method`` on every shard; list of results.

        Tier-wide maintenance fan-out (the scrubber's live-upath gather);
        not a data-path operation, so it is deliberately serial and
        unrouted.
        """
        results = []
        for shard in range(self.n_shards):
            if self.groups is None:
                results.append(
                    (yield from self.drivers[shard].call(method, *args)))
            else:
                results.append(
                    (yield from self._call_group(shard, method, args)))
        return results


# ---------------------------------------------------------------------------
# Service-side routing mixin
# ---------------------------------------------------------------------------

class ShardRoutingPart:
    """Shard arithmetic, peer RPCs, forwards, and forwarded read handlers.

    Mixin for :class:`repro.core.shard.service.ShardMetadataService`; every
    ``super()`` call resolves through the composed class to
    :class:`repro.core.metaservice.MetadataService`.
    """

    # -- recovery epochs and fences ---------------------------------------

    def _stamp(self, epoch=None):
        """The ``(coordinator, epoch)`` pair a coordinated RPC carries.

        ``epoch`` is the value the operation captured at its start;
        without one (recovery-driven calls, which are always current) the
        live :attr:`epoch` is used.  Captured-at-start matters: after a
        mid-operation recovery the service object's epoch has moved on,
        and the still-running ("zombie") operation must keep presenting
        its stale epoch so peers can fence it.
        """
        return (self.shard_id, self.epoch if epoch is None else epoch)

    def _check_stamp(self, stamp):
        """Refuse a stale-epoch coordinator (no stamp = unfenced caller).

        Zero simulated cost: fences are kept in memory (mirroring the
        durable ``epochs`` rows) exactly like the partition function's
        override map, so the no-crash path pays a dict lookup and
        nothing else.  Call this *inside* the transaction body for
        mutating handlers — bodies are atomic with respect to
        ``install_fences``, which closes the race between a fence landing
        and a stale write committing.
        """
        if stamp is None:
            return
        coord, epoch = stamp
        fence = self.fences.get(coord, 0)
        if epoch < fence:
            if obs.METRICS is not None:
                obs.METRICS.incr("epoch_fenced", self.shard_id)
            raise EpochFenced(coord, epoch, fence)

    @staticmethod
    def _coord_of(rid):
        """The coordinator shard encoded in a record id (``s<k>....``)."""
        return int(rid[1:].split(".", 1)[0])

    # -- admission gate ----------------------------------------------------

    def _dispatch(self):
        """Dispatch cost, gated while this shard's local rebuild runs.

        A real node refuses service between crash and restart; here the
        rebuild is a few cooperative yields, so requests that land in the
        window simply wait on the admission event instead of racing the
        journal replay.  A *killed* member (``down``, set by the fault
        hooks in :mod:`repro.core.faults`) refuses outright instead of
        queueing: its requests must fail fast so callers re-target the
        group's promoted primary.  The no-crash path pays two attribute
        tests.
        """
        if self.down:
            if obs.METRICS is not None:
                obs.METRICS.incr("member_down", self.shard_id)
            raise MemberDown(self.shard_id)
        if self._admission is None:
            return super()._dispatch()
        return self._gated_dispatch()

    def _gated_dispatch(self):
        entered = self.sim.now
        while self._admission is not None:
            yield self._admission
        if obs.METRICS is not None:
            obs.METRICS.observe(
                "admission_wait_ms", self.shard_id, self.sim.now - entered)
        if self.down:
            if obs.METRICS is not None:
                obs.METRICS.incr("member_down", self.shard_id)
            raise MemberDown(self.shard_id)
        yield from super()._dispatch()

    def _recovery_dispatch(self):
        """Dispatch for recovery control-plane RPCs, bypassing the gate.

        ``install_fences`` / ``max_vino_in_class`` / ``max_intent_seq``
        are served *during* a local recovery's admission outage: they
        touch only durable control tables (never the namespace a rebuild
        is replaying — the journal-swap window itself is closed by the
        transaction quiesce in
        :meth:`repro.db.service.DbService.crash_and_recover`).  Routing
        them through the gate would deadlock two shards recovering
        concurrently: each holds its own gate closed while waiting for
        the other to serve its fence install / allocator probe.
        """
        if self.down:
            if obs.METRICS is not None:
                obs.METRICS.incr("member_down", self.shard_id)
            raise MemberDown(self.shard_id)
        return super()._dispatch()

    def _rejoin_dispatch(self):
        """Dispatch for the snapshot install that revives a dead member.

        Deliberately ignores both the ``down`` flag and the admission
        gate: the install *is* the restart — the member is marked down
        for the whole resync window precisely so it serves nothing else
        until the snapshot is in place.
        """
        return super()._dispatch()

    # -- shard arithmetic -------------------------------------------------

    def _owner_of(self, path):
        """The shard owning ``path``'s leaf entry.

        Entry-aware: in a split directory each entry routes by the hash
        of its own name; otherwise by the parent directory as before.
        """
        parent, name = split(path)
        return self.sharding.shard_of_entry(parent, name, self.n_shards)

    def _dir_owner(self, dir_path):
        return self.sharding.shard_of_dir(dir_path, self.n_shards)

    def _check_hops(self, hops, path):
        if hops > _MAX_SYMLINK_DEPTH:
            raise FsError.einval(
                f"too many levels of symbolic links: {path}")

    # -- peer communication ----------------------------------------------

    def _peer(self, shard, method, *args):
        """Coroutine: an internal shard-to-shard RPC (full network cost)."""
        call = self.machine.call(
            self.shard_machines[shard], "cofsmds", method, args=args,
            req_size=self.config.rpc_bytes, resp_size=self.config.rpc_bytes,
        )
        if self.faults is not None:
            call = self._peer_traced(call, shard, method)
        if obs.TRACER is None:
            return call
        return self._peer_span(call, "peer_rpc", shard, method)

    def _peer_traced(self, call, shard, method):
        """Coroutine: a peer RPC whose send/receive are crash boundaries."""
        self.faults.boundary(("send", self.shard_id, shard, method))
        result = yield from call
        self.faults.boundary(("recv", self.shard_id, shard, method))
        return result

    def _peer_span(self, call, kind, target, method):
        """Coroutine: run a shard-to-shard (or member) RPC under a span.

        Created in the issuing process but possibly *executed* in a
        spawned child (parallel broadcasts / fence fan-outs): the span
        opens on first resume, inside the child, whose inherited ``ctx``
        parents it correctly.
        """
        tracer = obs.TRACER
        if tracer is None:  # disabled between creation and first resume
            result = yield from call
            return result
        sim = self.sim
        span = tracer.start(kind, method, sim.now, shard=self.shard_id,
                            epoch=self.epoch, target=target)
        try:
            result = yield from call
        except FsError as exc:
            tracer.finish(span, sim.now, outcome=exc.code)
            raise
        except BaseException as exc:
            tracer.finish(span, sim.now, outcome=type(exc).__name__)
            raise
        tracer.finish(span, sim.now)
        return result

    def _call_shard(self, shard, method, *args):
        """Coroutine: invoke an internal op on a shard (maybe this one)."""
        if shard == self.shard_id:
            return getattr(self, method)(*args)
        return self._peer(shard, method, *args)

    def _redispatch(self, fwd, method, *args):
        """Coroutine: restart ``method`` where a forward says it belongs."""
        return self._call_shard(fwd.shard, method, *args)

    # -- resolution hooks -------------------------------------------------

    def _attr_view(self, row):
        view = super()._attr_view(row)
        view["shard"] = self.shard_id
        return view

    def _resolve_retarget(self, txn, target, follow, depth):
        if not self._local_only:
            # Walking toward a directory whose *contents* matter (a parent
            # walk, or readdir) routes by the target directory itself;
            # walking to a leaf routes by the leaf's parent.
            owner = self._dir_owner(target) if self._parent_walk \
                else self._owner_of(target)
            if owner != self.shard_id:
                raise ResolveForward(owner, target)
        # The walk continues locally on a rewritten path: remember it, so
        # the ownership guard in _txn_resolve_parent knows the textual
        # path no longer names the resolved entry (and readdir knows the
        # real directory to merge partitions for).
        self._walk_target = target
        return super()._resolve_retarget(txn, target, follow, depth)

    def _absent_dentry(self, txn, path, parts, index):
        if not self._local_only:
            dir_path = "/" + "/".join(parts[:index])
            owner = self.sharding.shard_of_entry(
                dir_path, parts[index], self.n_shards)
            if owner != self.shard_id:
                # A component with no local dentry may still be a
                # partitioned file (or stub) on the shard owning this
                # *entry* (its name's partition in a split directory,
                # the directory's owner otherwise) — which must then
                # answer ENOTDIR, not ENOENT.  Forward; the owner
                # resolves authoritatively and never re-forwards.  Parent
                # walks mark the forward ``final``: their redispatch must
                # go to this owner verbatim, since re-deriving the shard
                # from the leaf's parent would route straight back here.
                # A leaf walk's *last* component forwards too: the
                # router's snapshot may predate a migration flip whose
                # purge already ran here — the shard the *current* map
                # names provably holds the entry, and a genuinely
                # missing name is ENOENT there just the same.
                raise ResolveForward(
                    owner, path, final=self._parent_walk)
        super()._absent_dentry(txn, path, parts, index)

    def _missing_child(self, txn, path, dentry, last):
        home = dentry.get("home")
        if home is None or home == self.shard_id or self._local_only:
            return super()._missing_child(txn, path, dentry, last)
        if not last or self._parent_walk:
            # A cross-shard hard link is never a directory; using it as a
            # path component (or as a parent/readdir target) is ENOTDIR —
            # only leaf inode ops forward to the home shard.
            raise FsError.enotdir(path)
        raise VinoForward(home, dentry["vino"])

    def _txn_resolve_parent(self, txn, path):
        # Transaction bodies never yield, so these flags are scoped to the
        # synchronous walk: no other handler can observe them mid-flight.
        prev = self._parent_walk
        prev_target = self._walk_target
        self._parent_walk = True
        self._walk_target = None
        try:
            try:
                result = super()._txn_resolve_parent(txn, path)
            except ResolveForward as fwd:
                # The *parent* walk crossed shards: re-attach the leaf so
                # the re-dispatched operation carries the full rewritten
                # path.  An authoritative (final) forward keeps its target
                # shard; a symlink-retarget forward re-routes by the
                # rewritten parent.
                _parent, name = split(path)
                base = normalize(fwd.path)
                full = f"/{name}" if base == "/" else f"{base}/{name}"
                if fwd.final:
                    raise ResolveForward(
                        fwd.shard, full, final=True) from None
                raise ResolveForward(self._owner_of(full), full) from None
            retargeted = self._walk_target is not None
        finally:
            self._parent_walk = prev
            self._walk_target = prev_target
        if not self._local_only and not self._skip_owner_guard \
                and not retargeted:
            owner = self._owner_of(path)
            if owner != self.shard_id:
                # Ownership re-check, atomic with the mutation: routing
                # flipped between the router's decision and this
                # transaction (a concurrent split/re-homing committed its
                # flip on this very dbsvc).  Land the mutation where the
                # entry now lives instead of writing a row routing no
                # longer reaches — this is what lets a migration's flip
                # transaction guarantee no entry is ever stranded on the
                # source.  Pure Python (no reads charged): the no-race
                # path costs nothing.  Suppressed for replicated-rename
                # replays, which legitimately walk every shard's skeleton.
                raise ResolveForward(owner, path, final=True)
        return result

    def _resolve_rename_old(self, txn, old):
        # rename's peek already pinned the source to this shard; walk the
        # local skeleton replica so a concurrently-installed cross-shard
        # symlink can't raise a source forward that the redispatch
        # handlers would misread as a destination forward.
        prev = self._local_only
        self._local_only = True
        try:
            return super()._resolve_rename_old(txn, old)
        finally:
            self._local_only = prev

    # -- forwarded single-path read handlers --------------------------------

    def getattr(self, path, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().getattr(path)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "getattr", fwd.path, _hops + 1)
            return view
        except VinoForward as fwd:
            view = yield from self._peer(fwd.shard, "getattr_vino", fwd.vino)
            return view
        if view["kind"] == DIRECTORY:
            # File creates/unlinks touch a directory's times only on its
            # contents-owner shard — the authoritative replica for stat.
            owner = self._dir_owner(path)
            if owner != self.shard_id:
                view = yield from self._peer(
                    owner, "getattr", path, _hops + 1)
        return view

    def bump_dir_times(self, path, now):
        """Apply a split directory's advisory time bump (owner clock).

        The owner's arrival order *is* the split directory's single
        ordered clock: partition shards forward the mtime/ctime bump of
        each entry mutation they serve, and bumps apply last-writer-wins
        in arrival order here — so stat (answered by this owner) reads
        one totally-ordered history rather than a per-partition merge.

        Plain python, deliberately outside the transaction and RPC
        machinery: timestamps are advisory (POSIX latitude), so the
        propagation is modeled free — like the shared partition map —
        and must stay charge-preserving (no simulated events, no
        journal records; a crash of this shard loses unjournaled
        bumps).  The walk follows this shard's own skeleton replica,
        so staged rename aliases resolve like any other dentry.
        """
        vino = self.root_vino
        for name in normalize(path).strip("/").split("/"):
            if not name:
                continue
            dentry = self.db.table("dentries").read((vino, name))
            if dentry is None:
                return False
            vino = dentry["vino"]
        row = self.db.table("inodes").read(vino)
        if row is None:
            return False
        row = dict(row)
        row["mtime"] = row["ctime"] = now
        self.db.table("inodes").write(row)
        return True

    def open_map(self, path, for_write, now, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().open_map(path, for_write, now)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "open_map", fwd.path, for_write, now, _hops + 1)
        except VinoForward as fwd:
            view = yield from self._peer(
                fwd.shard, "open_vino", fwd.vino, for_write, now)
        return view

    def readdir(self, path, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()

        def body(txn):
            # Like a parent walk: a symlink on the way must route by the
            # target directory itself (whose entries live on its owner).
            prev = self._parent_walk
            prev_target = self._walk_target
            self._parent_walk = True
            self._walk_target = None
            try:
                row = self._txn_resolve(txn, path)
                # A symlink may have rewritten the path mid-walk; the
                # partition merge below must consult the *resolved*
                # directory, not the textual argument.
                resolved = normalize(self._walk_target or path)
            finally:
                self._parent_walk = prev
                self._walk_target = prev_target
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(path)
            names = [d["name"] for d in
                     txn.index_read("dentries", "parent", row["vino"])]
            return resolved, sorted(names)

        try:
            resolved, names = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            names = yield from self._redispatch(
                fwd, "readdir", fwd.path, _hops + 1)
            return names
        owners = self.sharding.entry_shards(resolved, self.n_shards)
        if owners == (self.shard_id,):
            return names
        # Split directory (or ownership moved after the router chose us):
        # union every partition's local listing.  Names dedup the
        # replicated skeleton and any entry a migration transiently left
        # on two shards — each entry appears exactly once.  Our own local
        # names count only while we are an authoritative partition; a
        # shard the routing no longer reaches may hold stale, already
        # purge-bound copies.
        merged = set(names) if self.shard_id in owners else set()
        for shard in owners:
            if shard == self.shard_id:
                continue
            part = yield from self._peer(shard, "readdir_shard", resolved)
            merged.update(part)
        return sorted(merged)

    def readdir_shard(self, path, _hops=0):
        """RPC: this shard's *local* listing of directory ``path``.

        One partition's contribution to a merged readdir over a split
        directory: resolve against the local skeleton replica (no
        forwards — every shard replicates the directory tree) and list
        only locally-present dentries.  The caller unions partitions and
        dedups by name.
        """
        self._check_hops(_hops, path)
        yield from self._dispatch()

        def body(txn):
            prev = self._local_only
            self._local_only = True
            try:
                row = self._txn_resolve(txn, path)
            finally:
                self._local_only = prev
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(path)
            return sorted(d["name"] for d in
                          txn.index_read("dentries", "parent", row["vino"]))

        names = yield from self.dbsvc.execute(body)
        return names

    def readlink(self, path, _hops=0):
        self._check_hops(_hops, path)
        try:
            target = yield from super().readlink(path)
        except ResolveForward as fwd:
            target = yield from self._redispatch(
                fwd, "readlink", fwd.path, _hops + 1)
        except VinoForward:
            # A cross-shard hard-link stub: its inode is never a symlink
            # (hard links to symlinks are rejected on sharded stacks), so
            # answer directly instead of leaking the control-flow exception.
            raise FsError.einval(f"not a symlink: {path}")
        return target

    # -- delegated write-back ----------------------------------------------

    def close_sync(self, vino, size, mtime, now):
        """Delegated write-back; chases an inode a rename migrated away.

        The router targets the learned home shard, but a concurrent
        cross-shard rename can move the inode after a client learned its
        home.  A miss here fans out to the peers before giving up, so the
        delegated size/mtime are never silently dropped.
        """
        result = yield from super().close_sync(vino, size, mtime, now)
        if result:
            return True
        for shard in range(self.n_shards):
            if shard == self.shard_id:
                continue
            found = yield from self._peer(
                shard, "close_sync_local", vino, size, mtime, now)
            if found:
                return True
        return False

    def close_sync_local(self, vino, size, mtime, now):
        """RPC (shard-to-shard): close_sync without the fan-out retry."""
        result = yield from super().close_sync(vino, size, mtime, now)
        return result

    # -- vino-addressed inode ops (forward targets) ------------------------

    def getattr_vino(self, vino):
        yield from self._dispatch()

        def body(txn):
            row = txn.read("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def setattr_vino(self, vino, changes, now):
        yield from self._dispatch()
        self._check_setattr(changes)

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def open_vino(self, vino, for_write, now):
        yield from self._dispatch()

        def body(txn):
            row = txn.read("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            if for_write:
                if row["kind"] == DIRECTORY:
                    raise FsError.eisdir(f"vino {vino}")
                row = dict(row)
                row["delegated"] = True
                txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    # -- peer queries ------------------------------------------------------

    def count_children_of(self, path):
        """RPC (shard-to-shard): how many entries this shard holds under
        ``path`` (0 when the path does not resolve here)."""
        yield from self._dispatch()

        def body(txn):
            try:
                row = self._txn_resolve(txn, path)
            except (FsError, ResolveForward):
                return 0
            if row["kind"] != DIRECTORY:
                return 0
            return len(txn.index_read("dentries", "parent", row["vino"]))

        count = yield from self.dbsvc.execute(body)
        return count

    def probe_parent(self, path):
        """RPC (shard-to-shard): walk ``path``'s parent here, authoritatively.

        A rename coordinator is pinned to its source's shard, so it
        cannot follow a *final* destination forward the way
        self-contained ops are re-dispatched wholesale; it asks the
        forward's target to run the walk instead.  Returns None when the
        parent resolves, raises the walk's FsError otherwise — terminal
        here, because a component the caller's skeleton lacks can only
        be a partitioned file, a stub, or nothing on the entries owner
        (directories and symlinks are replicated everywhere).  A walk
        that forwards *again* (a symlink rewrote the path, or a deeper
        component is owned elsewhere) reports the hand-off as
        ``("forward", shard, path)`` for the caller to chase.
        """
        yield from self._dispatch()

        def body(txn):
            try:
                self._txn_resolve_parent(txn, path)
            except ResolveForward as fwd:
                return ("forward", fwd.shard, fwd.path)
            return None

        outcome = yield from self.dbsvc.execute(body)
        return outcome

    def peek_entry(self, path):
        """RPC (shard-to-shard): this shard's dentry at ``path``, if any.

        ``kind`` is None for a stub whose inode lives elsewhere.
        """
        yield from self._dispatch()

        def body(txn):
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except (FsError, ResolveForward):
                return None
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return None
            home = dentry.get("home")
            if home is not None and home != self.shard_id:
                return {"vino": dentry["vino"], "kind": None, "home": home}
            row = txn.read("inodes", dentry["vino"])
            if row is None:
                return None
            return {"vino": row["vino"], "kind": row["kind"],
                    "home": self.shard_id}

        entry = yield from self.dbsvc.execute(body)
        return entry
