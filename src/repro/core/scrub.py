"""Underlying-object scrubber: reclaim objects the namespace forgot.

COFS decouples naming from placement, so the *metadata* tier can stay
perfectly consistent while *underlying* objects leak: a replaced file's
underlying path is unlinked by the client after the metadata commit
(:meth:`repro.core.cofs.CofsFileSystem.rename` / ``unlink``), and a client
that dies in that window — or together with its coordinator — leaves the
object stranded in its bucket forever.  The tier's crash drills prove no
*metadata* is ever lost; this module recovers the *space*.

:func:`run_scrub` walks the reorganized layout under
``CofsConfig.underlying_root`` through a node's bare parallel-FS client
(full simulated cost: every readdir/stat/unlink is a real RPC), gathers
the live ``upath`` set from every metadata shard (one read transaction
per shard, fanned out through the router), and unlinks every underlying
file no live inode references.

Ordering is load-bearing: the layout is walked *first* and the live set
gathered *second*.  An underlying object exists only after its MDS
transaction committed (the client creates it with the returned upath),
so anything the walk finds that is genuinely live is guaranteed to
appear in the later gather — a file created concurrently can only read
as live, never as an orphan.  The scrubber is still intended for
quiesced or idle windows (like recovery), but the safe ordering makes a
racing create benign rather than data loss.
"""


def _walk_underlying(fs, root, found):
    """Coroutine: collect every file path under ``root`` (depth-first)."""
    from repro.pfs.errors import FsError

    try:
        names = yield from fs.readdir(root)
    except FsError as exc:
        if exc.code in ("ENOENT", "ENOTDIR"):
            return found
        raise
    for name in names:
        child = f"{root}/{name}" if root != "/" else f"/{name}"
        attr = yield from fs.stat(child)
        if attr.is_dir:
            yield from _walk_underlying(fs, child, found)
        else:
            found.append(child)
    return found


def run_scrub(stack, node=0, dry_run=False):
    """Coroutine: compare bucket contents against live upaths; reclaim.

    Returns a report dict: ``scanned`` (underlying files seen), ``live``
    (upaths referenced by the metadata tier), ``orphans`` (the stranded
    paths found) and ``reclaimed`` (how many were unlinked; 0 under
    ``dry_run``).
    """
    underlying = stack.underlying(node)
    driver = stack.driver(node)
    root = stack.cofs_config.underlying_root

    # Walk first, gather second (see the module docstring): an object the
    # walk saw is either already in the live set or was unlinked since.
    found = []
    yield from _walk_underlying(underlying, root, found)

    live = set()
    if hasattr(driver, "call_all"):
        per_shard = yield from driver.call_all("live_upaths")
        for paths in per_shard:
            live.update(paths)
    else:
        live.update((yield from driver.call("live_upaths")))
    orphans = sorted(path for path in found if path not in live)
    reclaimed = 0
    if not dry_run:
        for path in orphans:
            yield from underlying.unlink(path)
            reclaimed += 1
    return {
        "scanned": len(found),
        "live": len(live),
        "orphans": orphans,
        "reclaimed": reclaimed,
    }
