"""The COFS metadata service.

A dedicated node runs the virtual-namespace authority: database tables for
inodes, directory entries and placement counters (Mnesia tables in the
paper).  Pure metadata operations are transactions against these tables —
*never* against the underlying file system — and the service keeps no
block-location information whatsoever: the only link to the data is the
underlying path assigned by the placement policy at creation time.

Read transactions cost CPU only; update transactions also force the
database log on the service node's local disk (group-committed).  This is
the cost asymmetry behind the paper's COFS numbers: stat ≈ 1 ms (round trip
+ query) versus utime ≈ 4 ms (round trip + query + log force).

Attribute delegation: while a file is open for writing somewhere, its size
and times change underneath COFS without the service seeing them ("there is
no need to contact the COFS metadata server if a file is written or
resized", §V).  The service marks such files *delegated*; a stat of a
delegated file merges the underlying file's size/times, and the close of
the writing handle syncs them back.
"""

import itertools

from repro.cluster.disk import Disk
from repro.core.placement import HashPlacementPolicy
from repro.db import Database, DbService
from repro.pfs.errors import FsError
from repro.pfs.types import (
    DIRECTORY, FILE, SYMLINK, components, normalize, split,
)
from repro.sim.rand import RandomStreams

_MAX_SYMLINK_DEPTH = 8

#: seed of the fallback stream namespace used when a stack is built without
#: shared :class:`~repro.sim.rand.RandomStreams` (direct unit constructions).
_FALLBACK_SEED = 0x0C0F5


class MetadataService:
    """The MDS: runs on its own machine, registered as service ``cofsmds``."""

    def __init__(self, machine, config, policy=None, streams=None):
        self.machine = machine
        self.sim = machine.sim
        self.config = config
        self.policy = policy or HashPlacementPolicy(config)
        if streams is None:
            streams = RandomStreams(_FALLBACK_SEED)
        self.rng = streams.stream(self._placement_stream())
        disk = Disk(
            self.sim, f"{machine.name}:ext3",
            seek_ms=config.mds_disk_seek_ms, bandwidth=config.mds_disk_bw,
        )
        machine.add_disk("ext3", disk)
        database = Database("cofsmeta")
        database.create_table("inodes", key="vino")
        database.create_table("dentries", key="key", indexes=("parent",))
        database.create_table("buckets", key="path")
        # Cross-shard coordination records (intent/prepare/dedup), the
        # re-partitioning override map, the intra-directory partition map,
        # and the recovery epoch/fence rows; always present in the schema
        # so recovery rebuilds are uniform, but only the sharded service
        # ever writes to them.
        database.create_table("intents", key="id")
        database.create_table("overrides", key="path")
        database.create_table("partitions", key="path")
        database.create_table("epochs", key="shard")
        # Replication bookkeeping (the backup's durable applied-LSN
        # pointer); only group *backups* ever write to it — see
        # :mod:`repro.core.shard.replication`.
        database.create_table("repl", key="slot")
        self.dbsvc = DbService(machine, database, disk, config.db)
        self._resolve_cache = {}      # parent-path tuple -> (vino, walked vinos)
        self._resolve_by_parent = {}  # dir vino -> prefix keys reading from it
        self._vino = itertools.count(1)
        self._bootstrap_root()
        self.dbsvc.journal.mark_durable()  # schema + root survive any crash
        machine.register("cofsmds", self)

    def _placement_stream(self):
        """Name of this service's placement-randomization stream."""
        return "cofs.placement"

    @property
    def db(self):
        """The live database (rebuilt in place after a crash recovery)."""
        return self.dbsvc.db

    def _bootstrap_root(self):
        root_vino = next(self._vino)
        self.root_vino = root_vino
        self.db.transaction(
            lambda txn: txn.insert("inodes", {
                "vino": root_vino, "kind": DIRECTORY, "mode": 0o755,
                "uid": 0, "gid": 0, "nlink": 2, "size": 0,
                "atime": 0.0, "mtime": 0.0, "ctime": 0.0,
                "target": None, "upath": None, "delegated": False,
            })
        )

    def _dispatch(self):
        return self.machine.compute(self.config.mds_dispatch_cpu_ms)

    # ------------------------------------------------------------------
    # in-transaction helpers (synchronous; run inside a txn body)
    # ------------------------------------------------------------------

    def _txn_resolve(self, txn, path, follow=True, _depth=0):
        """Walk ``path`` through the dentry table; returns the inode row.

        Repeated walks of the same parent directory consult a prefix cache
        mapping the parent path to its inode number, skipping the per-
        component dentry/inode queries.  The skipped reads are still
        *counted* on the transaction (``txn.reads``), so the service's
        CPU-cost accounting — and therefore every simulated time — is
        unchanged; only the Python work is saved.  The cache is bypassed
        whenever the transaction has staged writes (read-your-writes), is
        invalidated on every namespace mutation touching a walked
        directory, and is cleared wholesale on crash recovery.
        """
        if _depth > _MAX_SYMLINK_DEPTH:
            raise FsError.einval(f"too many levels of symbolic links: {path}")
        parts = components(path)
        n = len(parts)
        row = None
        start = 0
        walked = None
        prefix_key = None
        cacheable = _depth == 0 and n > 1 and not txn._staged
        if cacheable:
            prefix_key = parts[:-1]
            hit = self._resolve_cache.get(prefix_key)
            if hit is not None:
                # Bypass txn.read (no staged writes here) so a stale hit
                # costs nothing; on success, count exactly the reads the
                # step-by-step walk would have issued for the prefix.
                row = self.db.table("inodes").read(hit[0])
                if row is not None:
                    txn.reads += 2 * (n - 1) + 1
                    start = n - 1
                else:  # pragma: no cover - invalidation keeps this fresh
                    self._forget_resolve(prefix_key)
                    row = None
            if start == 0:
                walked = []
        if row is None or start == 0:
            row = txn.read("inodes", self.root_vino)
        for index in range(start, n):
            name = parts[index]
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(path)
            if walked is not None and index == n - 1:
                # The whole parent prefix resolved without symlinks:
                # remember it before the (possibly failing) leaf step.
                self._remember_resolve(prefix_key, row["vino"], walked)
            dentry = txn.read("dentries", (row["vino"], name))
            if dentry is None:
                self._absent_dentry(txn, path, parts, index)
            child = txn.read("inodes", dentry["vino"])
            if child is None:
                child = self._missing_child(txn, path, dentry, index == n - 1)
            last = index == n - 1
            if child["kind"] == SYMLINK and (follow or not last):
                target = child["target"]
                if not target.startswith("/"):
                    target = "/" + "/".join(parts[:index]) + "/" + target
                rest = "/".join(parts[index + 1:])
                if rest:
                    target = f"{target}/{rest}"
                return self._resolve_retarget(txn, target, follow, _depth + 1)
            if walked is not None and not last:
                walked.append(row["vino"])
            row = child
        return row

    def _resolve_retarget(self, txn, target, follow, depth):
        """Continue resolution at a symlink's rewritten target path.

        The sharded service overrides this to forward the walk when the
        target's owner is another shard; here it simply recurses.
        """
        return self._txn_resolve(txn, target, follow, _depth=depth)

    def _absent_dentry(self, txn, path, parts, index):
        """No dentry for ``parts[index]``: plain ENOENT on a single service.

        The sharded service overrides this — a *middle* component absent
        here may be a partitioned file on the shard owning the enclosing
        directory's entries, which must answer (ENOTDIR) authoritatively.
        """
        raise FsError.enoent(path)

    def _missing_child(self, txn, path, dentry, last):
        """A dentry whose inode is absent: dangling on a single service.

        The sharded service overrides this — a dentry may point at an inode
        homed on another shard (cross-shard hard links).
        """
        raise FsError.enoent(path)

    #: bound on cached resolution prefixes; overflow clears the cache.
    _RESOLVE_CACHE_MAX = 512

    def _remember_resolve(self, prefix_key, parent_vino, walked):
        if len(self._resolve_cache) >= self._RESOLVE_CACHE_MAX:
            self._resolve_cache.clear()
            self._resolve_by_parent.clear()
        self._resolve_cache[prefix_key] = (parent_vino, walked)
        by_parent = self._resolve_by_parent
        for vino in walked:
            bucket = by_parent.get(vino)
            if bucket is None:
                bucket = by_parent[vino] = set()
            bucket.add(prefix_key)

    def _forget_resolve(self, prefix_key):
        self._resolve_cache.pop(prefix_key, None)

    def _invalidate_resolve(self, parent_vino):
        """Drop cached prefixes that read a dentry under ``parent_vino``."""
        keys = self._resolve_by_parent.pop(parent_vino, None)
        if keys:
            cache = self._resolve_cache
            for key in keys:
                cache.pop(key, None)

    def _txn_resolve_parent(self, txn, path):
        parent_path, name = split(path)
        if not name:
            raise FsError.einval(f"path has no leaf component: {path}")
        parent = self._txn_resolve(txn, parent_path)
        if parent["kind"] != DIRECTORY:
            raise FsError.enotdir(parent_path)
        return parent, name

    def _txn_assign_bucket(self, txn, node, parent_vino, pid):
        """Pick (and count) the underlying directory for a new file."""
        cap = self.config.max_entries_per_dir
        bucket = self.policy.bucket_for(node, parent_vino, pid, self.rng)
        overflow = self.policy.overflow_candidates(bucket)
        chosen = None
        for candidate in itertools.chain([bucket], overflow):
            row = txn.read_for_update("buckets", candidate) \
                or {"path": candidate, "count": 0}
            if cap <= 0 or not overflow or row["count"] < cap:
                row["count"] += 1
                txn.write("buckets", row)
                chosen = candidate
                break
        if chosen is None:  # pragma: no cover - overflow space exhausted
            raise FsError.einval("placement space exhausted")
        return chosen

    def _txn_bucket_adjust(self, txn, upath, delta):
        """Adjust the placement counter charged for ``upath``'s bucket.

        The single accounting primitive shared by unlink, rename-replace
        and the sharded tier's row migrations.  A missing counter row is
        created for a positive charge and skipped for a release (nothing
        to give back).
        """
        bucket, _slash, _leaf = upath.rpartition("/")
        row = txn.read_for_update("buckets", bucket)
        if row is None:
            if delta <= 0:
                return
            row = {"path": bucket, "count": 0}
        row["count"] = max(0, row["count"] + delta)
        txn.write("buckets", row)

    def _attr_view(self, row):
        """The wire form of an inode row (a plain dict)."""
        return {
            "vino": row["vino"], "kind": row["kind"], "mode": row["mode"],
            "uid": row["uid"], "gid": row["gid"], "nlink": row["nlink"],
            "size": row["size"], "atime": row["atime"], "mtime": row["mtime"],
            "ctime": row["ctime"], "upath": row["upath"],
            "delegated": row["delegated"], "target": row["target"],
        }

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def getattr(self, path):
        yield from self._dispatch()
        row = yield from self.dbsvc.execute(
            lambda txn: self._txn_resolve(txn, path)
        )
        return self._attr_view(row)

    def create_node(self, path, kind, mode, uid, gid, node, pid, now,
                    target=None):
        """Create a file/directory/symlink in the virtual namespace.

        For regular files, assigns the underlying path via the placement
        policy.  Returns the new inode's wire view.
        """
        yield from self._dispatch()
        row = yield from self.dbsvc.execute(
            self._create_body(path, kind, mode, uid, gid, node, pid, now,
                              target))
        return self._attr_view(row)

    def _create_body(self, path, kind, mode, uid, gid, node, pid, now,
                     target):
        """The create transaction body (wrapped by the sharded service so
        a replication intent commits atomically with the create)."""

        def body(txn):
            parent, name = self._txn_resolve_parent(txn, path)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                raise FsError.eexist(path)
            vino = next(self._vino)
            upath = None
            if kind == FILE and node is not None:
                # ``node is None`` marks a metadata-only create (mknod):
                # no underlying object exists, so no placement slot is
                # assigned or charged — the file lives purely in the
                # virtual namespace (the MDS-ceiling probe of the
                # ``mdcreate`` benchmark op).
                bucket = self._txn_assign_bucket(txn, node, parent["vino"], pid)
                upath = f"{bucket}/v{vino:08d}"
            row = {
                "vino": vino, "kind": kind, "mode": mode, "uid": uid,
                "gid": gid, "nlink": 2 if kind == DIRECTORY else 1,
                "size": 0, "atime": now, "mtime": now, "ctime": now,
                "target": target, "upath": upath, "delegated": False,
            }
            txn.insert("inodes", row)
            self._invalidate_resolve(parent["vino"])
            txn.insert("dentries", {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": vino,
            })
            parent = dict(parent)  # reads are read-only views; copy to mutate
            parent["mtime"] = parent["ctime"] = now
            if kind == DIRECTORY:
                parent["nlink"] += 1
            txn.write("inodes", parent)
            return row

        return body

    #: inode fields a client may set directly.
    _SETTABLE = frozenset({"mode", "uid", "gid", "atime", "mtime", "size"})

    def _check_setattr(self, changes):
        bad = set(changes) - self._SETTABLE
        if bad:
            raise FsError.einval(f"setattr of non-settable fields: {bad}")

    def setattr(self, path, changes, now):
        """Update mode/uid/gid/times of the object at ``path``."""
        yield from self._dispatch()
        self._check_setattr(changes)
        row = yield from self.dbsvc.execute(
            self._setattr_body(path, changes, now))
        return self._attr_view(row)

    def _setattr_body(self, path, changes, now):
        """The setattr transaction body (wrapped by the sharded service)."""

        def body(txn):
            row = dict(self._txn_resolve(txn, path))
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return row

        return body

    def unlink(self, path, now):
        """Remove a non-directory name; returns (upath, last_link)."""
        yield from self._dispatch()
        outcome = yield from self.dbsvc.execute(self._unlink_body(path, now))
        return outcome[1]

    def _unlink_stub_home(self, dentry):
        """Hook: the home shard of a remote-inode stub dentry (None here)."""
        return None

    def _unlink_body(self, path, now):
        """The unlink transaction body, returning ``(kind, (upath, last))``
        — or ``("#stub", vino, home)`` on a sharded service's stub name."""

        def body(txn):
            parent, name = self._txn_resolve_parent(txn, path)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                raise FsError.enoent(path)
            home = self._unlink_stub_home(dentry)
            if home is not None:
                # Stub name: remove it here, adjust the inode at home.
                self._invalidate_resolve(parent["vino"])
                txn.delete("dentries", (parent["vino"], name))
                up = dict(parent)
                up["mtime"] = up["ctime"] = now
                txn.write("inodes", up)
                return ("#stub", dentry["vino"], home)
            row = txn.read_for_update("inodes", dentry["vino"])
            if row is None:
                raise FsError.enoent(path)
            if row["kind"] == DIRECTORY:
                raise FsError.eisdir(path)
            self._invalidate_resolve(parent["vino"])
            txn.delete("dentries", (parent["vino"], name))
            upath, last = self._drop_link(txn, row, now)
            parent = dict(parent)
            parent["mtime"] = parent["ctime"] = now
            txn.write("inodes", parent)
            return (row["kind"], (upath, last))

        return body

    def _drop_link(self, txn, row, now):
        """Drop one link from ``row`` (already read for update): on the
        last link, delete the inode and release its placement slot.
        Returns ``(upath, last)``.  Shared with the sharded service's
        vino-addressed unlink so the two paths can never diverge."""
        row["nlink"] -= 1
        row["ctime"] = now
        last = row["nlink"] <= 0
        if last:
            txn.delete("inodes", row["vino"])
            if row["upath"] is not None:
                self._txn_bucket_adjust(txn, row["upath"], -1)
        else:
            txn.write("inodes", row)
        return (row["upath"], last)

    def rmdir(self, path, now):
        yield from self._dispatch()
        result = yield from self.dbsvc.execute(self._rmdir_body(path, now))
        return result

    def _rmdir_body(self, path, now):
        """The rmdir transaction body (wrapped by the sharded service)."""

        def body(txn):
            parent, name = self._txn_resolve_parent(txn, path)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                raise FsError.enoent(path)
            row = txn.read("inodes", dentry["vino"])
            if row is None:
                # No local inode: on a sharded service this is a hard-link
                # stub (whose inode lives on its home shard) — never a dir.
                raise FsError.enotdir(path)
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(path)
            if txn.index_read("dentries", "parent", row["vino"]):
                raise FsError.enotempty(path)
            self._invalidate_resolve(parent["vino"])
            self._invalidate_resolve(row["vino"])
            txn.delete("dentries", (parent["vino"], name))
            txn.delete("inodes", row["vino"])
            parent = dict(parent)
            parent["nlink"] -= 1
            parent["mtime"] = parent["ctime"] = now
            txn.write("inodes", parent)
            return True

        return body

    def readdir(self, path):
        yield from self._dispatch()

        def body(txn):
            row = self._txn_resolve(txn, path)
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(path)
            names = [d["name"] for d in
                     txn.index_read("dentries", "parent", row["vino"])]
            return sorted(names)

        names = yield from self.dbsvc.execute(body)
        return names

    def rename(self, old, new, now):
        """Move a name in the virtual tree; the underlying path is untouched
        (placement is decoupled from naming — renames never move data)."""
        yield from self._dispatch()
        result = yield from self._rename_local(old, new, now)
        return result

    def _rename_replace_stub(self, txn, existing, pending):
        """Hook: is ``existing`` a remote-inode stub some other shard owns?

        Always false on a single service; the sharded override queues the
        remote link-count adjustment on ``pending`` and answers true.
        """
        return False

    def _resolve_rename_old(self, txn, old):
        """Hook: resolve the rename *source*'s parent directory.

        The sharded service pins this walk to the local replica of the
        skeleton: its peek already fixed the source on that shard, and a
        forward raised while re-walking the source would be mistaken for
        a *destination* forward by rename's redispatch handlers.
        """
        return self._txn_resolve_parent(txn, old)

    def _rename_local(self, old, new, now, pending=None, replaced=None):
        """Coroutine: the rename transaction against this service's tables.

        ``pending`` (sharded callers) collects remote inode adjustments the
        body cannot perform in-transaction; the caller drains it on commit.
        ``replaced`` collects the kinds of inodes the rename destroyed, so
        a sharded caller can tell when a replicated symlink died and its
        replicas on other shards must be removed too.
        """
        result = yield from self.dbsvc.execute(
            self._rename_body(old, new, now, pending, replaced))
        return result

    def _rename_body(self, old, new, now, pending=None, replaced=None):
        """The rename transaction body (reused by sharded mirror replays)."""

        def body(txn):
            old_parent, old_name = self._resolve_rename_old(txn, old)
            dentry = txn.read("dentries", (old_parent["vino"], old_name))
            if dentry is None:
                raise FsError.enoent(old)
            moving = txn.read_for_update("inodes", dentry["vino"])
            if moving is not None and moving["kind"] == DIRECTORY:
                # POSIX: a directory cannot become its own descendant
                # (the insert would cycle the tree and strand the whole
                # subtree from the root).  A path-prefix test suffices
                # for canonical paths; reaching the moving directory
                # through a symlink is not detected (known limitation —
                # real implementations walk the new parent's ancestry).
                norm_old, norm_new = normalize(old), normalize(new)
                if norm_new.startswith(norm_old + "/"):
                    raise FsError.einval(
                        f"cannot move a directory beneath itself: "
                        f"{old} -> {new}")
            new_parent, new_name = self._txn_resolve_parent(txn, new)
            # Always two distinct copies, even for a same-directory rename:
            # the original read-as-copy semantics kept them independent.
            old_parent = dict(old_parent)
            new_parent = dict(new_parent)
            existing = txn.read("dentries", (new_parent["vino"], new_name))
            replaced_upath, replaced_last = None, False
            if existing is not None:
                if existing["vino"] == moving["vino"]:
                    return (None, False)
                if self._rename_replace_stub(txn, existing, pending):
                    # The stub is never a directory, so replacing it with
                    # one is ENOTDIR, exactly like replacing a plain file;
                    # the remote inode is adjusted by the sharded caller.
                    if moving["kind"] == DIRECTORY:
                        raise FsError.enotdir(new)
                else:
                    target = txn.read_for_update("inodes", existing["vino"])
                    if target["kind"] == DIRECTORY:
                        if moving["kind"] != DIRECTORY:
                            raise FsError.eisdir(new)
                        if txn.index_read("dentries", "parent", target["vino"]):
                            raise FsError.enotempty(new)
                        self._invalidate_resolve(target["vino"])
                        txn.delete("inodes", target["vino"])
                        new_parent["nlink"] -= 1
                        if new_parent["vino"] == old_parent["vino"]:
                            # Read-as-copy: both names share one parent
                            # row, but a same-parent rename writes back
                            # only the old_parent copy — mirror the
                            # replaced subdirectory's drop there too.
                            old_parent["nlink"] -= 1
                        if replaced is not None:
                            replaced.append(target["kind"])
                    else:
                        if moving["kind"] == DIRECTORY:
                            raise FsError.enotdir(new)
                        target["nlink"] -= 1
                        if target["nlink"] <= 0:
                            txn.delete("inodes", target["vino"])
                            if target["upath"] is not None:
                                # Release the replaced file's placement
                                # slot, exactly as unlink's _drop_link does.
                                self._txn_bucket_adjust(
                                    txn, target["upath"], -1)
                            replaced_upath, replaced_last = target["upath"], True
                            if replaced is not None:
                                replaced.append(target["kind"])
                        else:
                            txn.write("inodes", target)
                txn.delete("dentries", (new_parent["vino"], new_name))
            self._invalidate_resolve(old_parent["vino"])
            self._invalidate_resolve(new_parent["vino"])
            txn.delete("dentries", (old_parent["vino"], old_name))
            txn.insert("dentries", {
                "key": (new_parent["vino"], new_name),
                "parent": new_parent["vino"], "name": new_name,
                "vino": moving["vino"],
            })
            if moving["kind"] == DIRECTORY and \
                    old_parent["vino"] != new_parent["vino"]:
                old_parent["nlink"] -= 1
                new_parent["nlink"] += 1
            moving["ctime"] = now
            txn.write("inodes", moving)
            old_parent["mtime"] = old_parent["ctime"] = now
            txn.write("inodes", old_parent)
            if new_parent["vino"] != old_parent["vino"]:
                new_parent["mtime"] = new_parent["ctime"] = now
                txn.write("inodes", new_parent)
            return (replaced_upath, replaced_last)

        return body

    def link(self, src, dst, now):
        """Hard link: a second virtual name for the same inode (and thus the
        same underlying file — nothing happens beneath)."""
        yield from self._dispatch()

        def body(txn):
            row = dict(self._txn_resolve(txn, src, follow=False))
            if row["kind"] == DIRECTORY:
                raise FsError.eisdir(src)
            parent, name = self._txn_resolve_parent(txn, dst)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                raise FsError.eexist(dst)
            self._invalidate_resolve(parent["vino"])
            txn.insert("dentries", {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": row["vino"],
            })
            row["nlink"] += 1
            row["ctime"] = now
            txn.write("inodes", row)
            parent = dict(parent)
            parent["mtime"] = parent["ctime"] = now
            txn.write("inodes", parent)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def readlink(self, path):
        yield from self._dispatch()

        def body(txn):
            row = self._txn_resolve(txn, path, follow=False)
            if row["kind"] != SYMLINK:
                raise FsError.einval(f"not a symlink: {path}")
            return row["target"]

        target = yield from self.dbsvc.execute(body)
        return target

    def open_map(self, path, for_write, now):
        """Resolve for open: returns the wire view, marking write delegation."""
        yield from self._dispatch()

        def body(txn):
            row = self._txn_resolve(txn, path)
            if for_write:
                if row["kind"] == DIRECTORY:
                    raise FsError.eisdir(path)
                row = dict(row)
                row["delegated"] = True
                txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def close_sync(self, vino, size, mtime, now):
        """Write-back of delegated size/mtime when a writer closes."""
        yield from self._dispatch()

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is None:
                return False  # unlinked while open; nothing to sync
            row["size"] = max(row["size"], size)
            row["mtime"] = mtime
            row["ctime"] = now
            row["delegated"] = False
            txn.write("inodes", row)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def live_upaths(self):
        """Every underlying path a live file references (one read txn).

        The underlying-object scrubber (:mod:`repro.core.scrub`) compares
        these against actual bucket contents to find objects orphaned by
        client-side cleanup that died after the metadata commit.
        """
        yield from self._dispatch()

        def body(txn):
            return sorted(
                row["upath"] for row in txn.match("inodes")
                if row["kind"] == FILE and row["upath"]
            )

        paths = yield from self.dbsvc.execute(body)
        return paths

    def statfs(self):
        """Namespace-level statistics (one read transaction)."""
        yield from self._dispatch()

        def body(txn):
            rows = txn.match("inodes")
            files = sum(1 for r in rows if r["kind"] == FILE)
            dirs = sum(1 for r in rows if r["kind"] == DIRECTORY)
            return {"files": files, "directories": dirs,
                    "inodes": len(rows)}

        stats = yield from self.dbsvc.execute(body)
        return stats

    # -- fault injection / recovery -------------------------------------------

    def recover(self):
        """Coroutine: crash the service node and recover from the journal.

        Rebuilds the tables from the durable journal prefix (Mnesia log
        replay), then re-seats the inode-number allocator above every
        surviving inode.  Returns the number of lost update transactions
        (0 under the default synchronous log policy).
        """
        lost = yield from self.dbsvc.crash_and_recover()
        self._resolve_cache.clear()
        self._resolve_by_parent.clear()
        vinos = [row["vino"] for row in self.db.table("inodes").all()]
        next_vino = (max(vinos) + 1) if vinos else 1
        self._vino = itertools.count(next_vino)
        return lost

    # -- diagnostics -----------------------------------------------------------

    def bucket_counts(self):
        """Snapshot of placement counters (tests / reports)."""
        return {
            row["path"]: row["count"] for row in self.db.table("buckets").all()
        }
