"""Placement policies: virtual path -> underlying directory.

The policy decides, at creation time, which underlying directory a regular
file's data object lands in.  The paper's policy (§III-B) hashes the
creating node, the virtual parent directory and the creating process, then
adds a randomization sublevel so that files created by one node but later
accessed in parallel are spread over several underlying directories; a
512-entry cap keeps every underlying directory inside the regime the
underlying file system is optimized for.

Alternative policies are pluggable ("different mapping policies could be
easily implemented", §III-B); :class:`IdentityPlacementPolicy` (mirror the
virtual layout) and the no-randomization variant exist for the ablation
benchmarks.
"""

import hashlib


class PlacementPolicy:
    """Interface: pick the underlying bucket directory for a new file."""

    def bucket_for(self, node, parent_vino, pid, rng):
        """The underlying directory (str) for a create in this context."""
        raise NotImplementedError

    def overflow_candidates(self, bucket):
        """Fallback directories to try when ``bucket`` is at capacity."""
        raise NotImplementedError


class HashPlacementPolicy(PlacementPolicy):
    """The paper's policy: hash(node, parent, pid) + randomization level."""

    def __init__(self, config, randomize=True):
        self.config = config
        self.randomize = randomize

    def _hash(self, node, parent_vino, pid):
        digest = hashlib.blake2b(
            f"{node}|{parent_vino}|{pid}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.config.hash_buckets

    def bucket_for(self, node, parent_vino, pid, rng):
        root = self.config.underlying_root
        bucket = self._hash(node, parent_vino, pid)
        if not self.randomize:
            return f"{root}/h{bucket:04x}"
        sub = rng.randrange(self.config.rand_subdirs)
        return f"{root}/h{bucket:04x}/r{sub:02d}"

    def overflow_candidates(self, bucket):
        """Walk the randomization sublevels round-robin when full."""
        if not self.randomize:
            base = bucket
            return [f"{base}.o{i:02d}" for i in range(1, 64)]
        base, _r, current = bucket.rpartition("/r")
        start = int(current) if current.isdigit() else 0
        n = self.config.rand_subdirs
        out = [f"{base}/r{(start + i) % n:02d}" for i in range(1, n)]
        # If every sublevel is full, open overflow generations.
        out.extend(f"{base}/r{j:02d}.o{g}" for g in range(1, 8) for j in range(n))
        return out


class RandomSpreadPolicy(PlacementPolicy):
    """Ablation: spread files across buckets with no node affinity.

    Demonstrates that the hash policy's inputs matter, not just the
    spreading: random placement keeps directories small (so the cap is
    honoured) but scatters each node's creates over directories shared with
    every other node, so directory tokens keep bouncing between nodes —
    the create storm contention comes back even though no directory is big.
    """

    def __init__(self, config):
        self.config = config

    def bucket_for(self, node, parent_vino, pid, rng):
        bucket = rng.randrange(self.config.hash_buckets)
        return f"{self.config.underlying_root}/s{bucket:04x}"

    def overflow_candidates(self, bucket):
        base = bucket.rsplit(".o", 1)[0]
        return [f"{base}.o{i:02d}" for i in range(1, 32)]


class IdentityPlacementPolicy(PlacementPolicy):
    """Ablation: mirror the virtual parent directory (no reorganization).

    With this policy COFS degenerates into a pure interposition layer: the
    underlying file system sees the same shared-directory storm the
    applications generate, isolating the benefit of the *reorganization*
    from the cost of the *virtualization*.
    """

    def __init__(self, config):
        self.config = config

    def bucket_for(self, node, parent_vino, pid, rng):
        return f"{self.config.underlying_root}/mirror/d{parent_vino}"

    def overflow_candidates(self, bucket):
        # No cap enforcement for the mirror policy: one directory per
        # virtual parent, however large it grows (that is the point).
        return []
