"""COFS configuration."""

from dataclasses import dataclass, field

from repro.db.service import DbConfig


@dataclass
class CofsConfig:
    """Tunables of the COFS layer.

    The placement values mirror the paper's prototype: a hash of (node,
    virtual parent, process) picks the underlying directory, a randomization
    factor spreads files one sublevel further, and underlying directories
    are capped at 512 entries (paper §III-B).
    """

    #: cap on entries per underlying directory.
    max_entries_per_dir: int = 512
    #: number of randomization subdirectories below each hash bucket.
    rand_subdirs: int = 16
    #: hash space for (node, parent, pid) buckets.
    hash_buckets: int = 4096
    #: root of the reorganized layout on the underlying file system.
    underlying_root: str = "/.cofs"
    #: MDS dispatch CPU per request, beyond per-query DB costs.
    mds_dispatch_cpu_ms: float = 0.02
    #: overlap the sharded tier's mirror broadcasts and skeleton fan-outs
    #: (``sim.all_of`` over the per-peer RPCs) instead of chaining them
    #: serially.  Off by default: serial chains are the seed behavior all
    #: reference figures were measured with.
    parallel_broadcasts: bool = False
    #: request/response sizes for driver<->service messages.
    rpc_bytes: int = 512
    #: route read-only ops (``stat``/``readlink``/``readdir``) to an
    #: in-sync backup of the owning group instead of its primary.  Only
    #: meaningful on replicated tiers (``CofsStack(replicas>=2)``); the
    #: staleness bound below governs which backups qualify.
    follower_reads: bool = False
    #: maximum replication lag (journal records behind the group head) a
    #: backup may have and still serve follower reads.  With the default
    #: synchronous quorum shipping an in-sync backup's lag is 0, so the
    #: default bound admits exactly the fully caught-up followers.
    follower_staleness: int = 0
    #: asynchronous group commit for metadata updates: commit to the
    #: volatile tables immediately, ack when *dependency* rules allow,
    #: and let a per-shard batcher coalesce log forces (see
    #: :class:`repro.db.service.DbConfig.async_commit`, which this flag
    #: simply propagates into ``db``).  Off by default — synchronous
    #: forces are the durability contract all reference figures were
    #: measured with.
    async_commit: bool = False
    #: cost model of the Mnesia-like database backing the service.
    db: DbConfig = field(default_factory=DbConfig)
    #: local disk of the metadata-service node (the paper used a 25 GB
    #: ext3-formatted disk locally attached to one blade).
    mds_disk_seek_ms: float = 3.0
    mds_disk_bw: float = 50000.0  # bytes/ms ~ 50 MB/s ext3-era disk

    def __post_init__(self):
        if self.async_commit and not self.db.async_commit:
            from dataclasses import replace as dc_replace

            self.db = dc_replace(self.db, async_commit=True)

    def replace(self, **overrides):
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)
