"""COFS reproduction: filesystem virtualization to avoid metadata bottlenecks.

Reproduces Artiaga & Cortes (DATE 2010) as a complete simulated system:

- :mod:`repro.core` -- COFS itself (placement driver, metadata service,
  composite filesystem);
- :mod:`repro.pfs` -- the GPFS-like shared-disk parallel FS it runs over;
- :mod:`repro.fuse` -- the userspace-interposition cost layer;
- :mod:`repro.db` -- the Mnesia-like table store behind the metadata service;
- :mod:`repro.sim` / :mod:`repro.net` / :mod:`repro.cluster` -- the
  discrete-event testbed substrate;
- :mod:`repro.workloads` -- metarates, IOR and application-shaped loads;
- :mod:`repro.bench` -- experiment runners for every figure/table.

Start with the README's quickstart, or::

    from repro.bench import build_flat_testbed
    from repro.bench.stack import CofsStack

    testbed = build_flat_testbed(n_clients=4, with_mds=True)
    fs = CofsStack(testbed).mount(0)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
