"""Error types for the table store."""


class DbError(RuntimeError):
    """Base class for database errors."""


class NoSuchTable(DbError):
    """Referenced table does not exist."""


class DuplicateKey(DbError):
    """Insert would overwrite an existing primary key."""


class AbortError(DbError):
    """A transaction was aborted; carries the caller's reason."""

    def __init__(self, reason=None):
        super().__init__(f"transaction aborted: {reason!r}")
        self.reason = reason
