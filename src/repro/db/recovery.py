"""Crash recovery for the table store.

Mnesia recovers node state from its transaction log; the reproduction
models the same contract: every committed transaction is appended to a
redo journal, and the *durable prefix* of that journal is what survives a
crash — everything if updates are forced synchronously, everything up to
the last completed force otherwise.  Recovery rebuilds the tables by
replaying the durable prefix into a fresh database.

This powers the fault-injection tests and the metadata-service restart
example: COFS's namespace is exactly as durable as the service's log
policy promises.
"""

from repro.db.database import Database


class RedoJournal:
    """An ordered redo log of committed transactions."""

    def __init__(self):
        self._records = []     # one list of (op, table, payload) per txn
        self.durable_upto = 0  # committed txns known to be on disk

    def __len__(self):
        return len(self._records)

    def append(self, operations):
        """Record one committed transaction's operations."""
        self._records.append(list(operations))

    def mark_durable(self, upto=None):
        """Records up to ``upto`` (default: everything appended so far)
        have reached the disk.

        The watermark never regresses: a batched force that completed
        after a full checkpoint must not un-mark the checkpoint's tail.
        ``upto`` matters to the asynchronous force batcher, which
        captures its head *before* the force I/O — records appended
        while the force was in flight are not covered by it.
        """
        target = len(self._records) if upto is None else upto
        if target > self.durable_upto:
            self.durable_upto = target

    def durable_records(self):
        """The redo records that survive a crash."""
        return self._records[: self.durable_upto]

    @property
    def lost_on_crash(self):
        """Committed transactions that a crash right now would lose."""
        return len(self._records) - self.durable_upto


def journal_of(txn):
    """Extract redo operations from a committed transaction's staging."""
    from repro.db.database import _DELETED

    operations = []
    for table, overlay in txn._staged.items():
        for pk, staged in overlay.items():
            if staged is _DELETED:
                operations.append(("delete", table, pk))
            else:
                operations.append(("write", table, dict(staged)))
    return operations


def rebuild(schema_source, journal):
    """A fresh :class:`Database` replayed from a journal's durable prefix.

    ``schema_source`` is the crashed database (its table definitions are
    metadata, not data — Mnesia keeps the schema in a separate always-
    durable table).
    """
    db = Database(schema_source.name)
    for table in schema_source.tables.values():
        db.create_table(table.name, table.key, table.index_fields)
    for record_ops in journal.durable_records():
        def body(txn, record_ops=record_ops):
            for op, table, payload in record_ops:
                if op == "write":
                    txn.write(table, payload)
                else:
                    txn.delete(table, payload)

        db.transaction(body)
    return db
