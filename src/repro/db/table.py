"""Keyed record tables with secondary hash indexes.

Records are flat dicts.  Reads are *copy-on-write*: queries hand out
read-only views of the stored dicts (``types.MappingProxyType``, zero-copy)
and writers pass fresh dicts in, which the table snapshots on the way in.
Stored dicts are never mutated in place — every upsert replaces the stored
object — so a view taken at any point is a stable snapshot.

Secondary indexes map an indexed field's value to the *insertion-ordered*
set of primary keys holding it (a dict used as an ordered set) and are
maintained on every mutation.  Query results follow insertion order, which
is deterministic under the deterministic simulator — no ``sorted(...,
key=repr)`` passes over every result set.
"""

from types import MappingProxyType

from repro.db.errors import DbError, DuplicateKey


class Table:
    """A set of records keyed by one field, with optional secondary indexes."""

    def __init__(self, name, key, indexes=()):
        if not key:
            raise DbError(f"table {name!r}: key field must be named")
        indexes = tuple(indexes)
        if key in indexes:
            raise DbError(f"table {name!r}: key field cannot also be an index")
        self.name = name
        self.key = key
        self.index_fields = indexes
        self._rows = {}
        # field -> value -> {pk: None} (insertion-ordered set of keys)
        self._indexes = {field: {} for field in indexes}

    def __len__(self):
        return len(self._rows)

    def __contains__(self, pk):
        return pk in self._rows

    def __repr__(self):
        return f"<Table {self.name} rows={len(self._rows)}>"

    # -- mutation ----------------------------------------------------------------

    def _pk_of(self, record):
        if self.key not in record:
            raise DbError(f"table {self.name}: record lacks key field {self.key!r}")
        return record[self.key]

    def insert(self, record):
        """Add a new record; :class:`DuplicateKey` if the key exists."""
        pk = self._pk_of(record)
        if pk in self._rows:
            raise DuplicateKey(f"table {self.name}: key {pk!r} already present")
        self._store(pk, dict(record))

    def write(self, record):
        """Upsert ``record`` (Mnesia ``write`` semantics)."""
        pk = self._pk_of(record)
        old = self._rows.get(pk)
        if old is not None:
            self._unindex(pk, old)
        self._store(pk, dict(record))

    def delete(self, pk):
        """Remove the record keyed ``pk``; returns True if it existed."""
        old = self._rows.pop(pk, None)
        if old is None:
            return False
        self._unindex(pk, old)
        return True

    def _store(self, pk, record):
        self._rows[pk] = record
        for field, index in self._indexes.items():
            if field in record:
                value = record[field]
                bucket = index.get(value)
                if bucket is None:
                    index[value] = {pk: None}
                else:
                    bucket[pk] = None

    def _unindex(self, pk, record):
        for field, index in self._indexes.items():
            if field in record:
                value = record[field]
                bucket = index.get(value)
                if bucket is not None:
                    bucket.pop(pk, None)
                    if not bucket:
                        del index[value]

    # -- queries -------------------------------------------------------------------

    def read(self, pk):
        """A read-only view of the record keyed ``pk``, or None.

        Views are zero-copy; take ``dict(view)`` before mutating.
        """
        record = self._rows.get(pk)
        return MappingProxyType(record) if record is not None else None

    def index_read(self, field, value):
        """Read-only views of all records whose ``field`` equals ``value``.

        Results follow insertion order.
        """
        index = self._indexes.get(field)
        if index is None:
            raise DbError(f"table {self.name}: no index on {field!r}")
        rows = self._rows
        return [MappingProxyType(rows[pk]) for pk in index.get(value, ())]

    def match(self, **pattern):
        """Read-only views of all records matching every ``field=value``.

        Uses the most selective available index, falling back to a scan;
        results follow the chosen container's insertion order.
        """
        candidates = None
        for field, value in pattern.items():
            if field == self.key:
                record = self._rows.get(value)
                candidates = (value,) if record is not None else ()
                break
            if field in self._indexes:
                bucket = self._indexes[field].get(value, {})
                if candidates is None or len(bucket) < len(candidates):
                    candidates = bucket
        if candidates is None:
            candidates = self._rows
        out = []
        rows = self._rows
        for pk in candidates:
            record = rows[pk]
            if all(record.get(f) == v for f, v in pattern.items()):
                out.append(MappingProxyType(record))
        return out

    def keys(self):
        """All primary keys, in insertion order (deterministic)."""
        return list(self._rows)

    def all(self):
        """Read-only views of every record, in insertion order."""
        return [MappingProxyType(record) for record in self._rows.values()]
