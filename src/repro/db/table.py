"""Keyed record tables with secondary hash indexes.

Records are flat dicts; the table copies records on the way in and out so
callers can never alias the stored state.  Secondary indexes map an indexed
field's value to the set of primary keys holding it and are maintained on
every mutation.
"""

from collections import defaultdict

from repro.db.errors import DbError, DuplicateKey


class Table:
    """A set of records keyed by one field, with optional secondary indexes."""

    def __init__(self, name, key, indexes=()):
        if not key:
            raise DbError(f"table {name!r}: key field must be named")
        indexes = tuple(indexes)
        if key in indexes:
            raise DbError(f"table {name!r}: key field cannot also be an index")
        self.name = name
        self.key = key
        self.index_fields = indexes
        self._rows = {}
        self._indexes = {field: defaultdict(set) for field in indexes}

    def __len__(self):
        return len(self._rows)

    def __contains__(self, pk):
        return pk in self._rows

    def __repr__(self):
        return f"<Table {self.name} rows={len(self._rows)}>"

    # -- mutation ----------------------------------------------------------------

    def _pk_of(self, record):
        if self.key not in record:
            raise DbError(f"table {self.name}: record lacks key field {self.key!r}")
        return record[self.key]

    def insert(self, record):
        """Add a new record; :class:`DuplicateKey` if the key exists."""
        pk = self._pk_of(record)
        if pk in self._rows:
            raise DuplicateKey(f"table {self.name}: key {pk!r} already present")
        self._store(pk, dict(record))

    def write(self, record):
        """Upsert ``record`` (Mnesia ``write`` semantics)."""
        pk = self._pk_of(record)
        if pk in self._rows:
            self._unindex(pk, self._rows[pk])
        self._store(pk, dict(record))

    def delete(self, pk):
        """Remove the record keyed ``pk``; returns True if it existed."""
        old = self._rows.pop(pk, None)
        if old is None:
            return False
        self._unindex(pk, old)
        return True

    def _store(self, pk, record):
        self._rows[pk] = record
        for field, index in self._indexes.items():
            if field in record:
                index[record[field]].add(pk)

    def _unindex(self, pk, record):
        for field, index in self._indexes.items():
            if field in record:
                bucket = index.get(record[field])
                if bucket is not None:
                    bucket.discard(pk)
                    if not bucket:
                        del index[record[field]]

    # -- queries -------------------------------------------------------------------

    def read(self, pk):
        """A copy of the record keyed ``pk``, or None."""
        record = self._rows.get(pk)
        return dict(record) if record is not None else None

    def index_read(self, field, value):
        """Copies of all records whose indexed ``field`` equals ``value``."""
        index = self._indexes.get(field)
        if index is None:
            raise DbError(f"table {self.name}: no index on {field!r}")
        return [dict(self._rows[pk]) for pk in sorted(index.get(value, ()), key=repr)]

    def match(self, **pattern):
        """Copies of all records matching every ``field=value`` in ``pattern``.

        Uses the most selective available index, falling back to a scan.
        """
        candidates = None
        for field, value in pattern.items():
            if field == self.key:
                record = self._rows.get(value)
                candidates = {value} if record is not None else set()
                break
            if field in self._indexes:
                bucket = self._indexes[field].get(value, set())
                if candidates is None or len(bucket) < len(candidates):
                    candidates = set(bucket)
        if candidates is None:
            candidates = set(self._rows)
        out = []
        for pk in sorted(candidates, key=repr):
            record = self._rows[pk]
            if all(record.get(f) == v for f, v in pattern.items()):
                out.append(dict(record))
        return out

    def keys(self):
        """All primary keys (sorted by repr for determinism)."""
        return sorted(self._rows, key=repr)

    def all(self):
        """Copies of every record."""
        return [dict(self._rows[pk]) for pk in self.keys()]
