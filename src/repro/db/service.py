"""Simulation wrapper charging virtual-time costs for database work.

Models the Mnesia node of the paper: queries cost CPU on the hosting machine
(Erlang handles its own multicore scheduling, so concurrent transactions use
all CPU slots), and update transactions force a write-ahead log on the node's
local disk — with group commit, so concurrent updaters share forces.  Read
transactions never touch the disk, which is why COFS ``stat`` stays near the
network round-trip time while ``utime`` pays a few milliseconds.
"""

from dataclasses import dataclass

from repro import obs
from repro.cluster.disk import GroupCommitLog
from repro.db.errors import DbError
from repro.db.recovery import RedoJournal, rebuild


@dataclass
class DbConfig:
    """Cost model for the database service.

    Defaults are calibrated so a simple read transaction costs ~0.1–0.2 ms of
    CPU and an update transaction ~2.5–3 ms including the log force, matching
    the COFS stat (~1 ms incl. network) and utime (~4 ms) anchors from the
    paper's evaluation (section IV-A).
    """

    base_cpu_ms: float = 0.03        # per-transaction dispatch overhead
    read_op_cpu_ms: float = 0.02     # per read query inside a transaction
    write_op_cpu_ms: float = 0.05    # per write query inside a transaction
    log_force_ms: float = 1.2        # ext3 journal force on the local disk
    log_per_member_ms: float = 0.05  # marginal cost per batched committer
    log_group_max: int = 32          # Mnesia dumps batches of transactions
    sync_updates: bool = True        # ablation hook: skip log forces if False
    recovery_base_ms: float = 200.0  # process restart + log open
    recovery_per_record_ms: float = 0.02  # redo-apply per journal record
    #: asynchronous group commit: updates commit to volatile tables and
    #: are acknowledged as soon as *dependency* rules allow, while a
    #: per-node batcher coalesces outstanding redo records into one log
    #: force per window.  The crash model becomes bounded loss: the
    #: journal tail since the last completed force is gone.  Off by
    #: default — synchronous forces are what every reference figure was
    #: measured with.
    async_commit: bool = False
    #: the batcher's coalescing window: how long it lets redo records
    #: accumulate before issuing the next force.
    async_force_window_ms: float = 0.25


class DbService:
    """Hosts a :class:`~repro.db.database.Database` on a simulated machine."""

    def __init__(self, machine, database, disk, config=None):
        self.machine = machine
        self.db = database
        self.config = config or DbConfig()
        self.disk = disk
        self.log = GroupCommitLog(
            machine.sim,
            disk,
            force_ms=self.config.log_force_ms,
            per_member_ms=self.config.log_per_member_ms,
            group_max=self.config.log_group_max,
        )
        self.journal = RedoJournal()
        self.db.journal = self.journal
        self.read_txns = 0
        self.update_txns = 0
        self.recoveries = 0
        #: optional fault-injection hook, called after every update
        #: transaction's commit boundary (once it is as durable as the log
        #: policy makes it).  Raising from the hook models a crash in the
        #: gap after that commit; see :mod:`repro.core.faults`.
        self.fault_hook = None
        #: optional replication hook (coroutine function taking the
        #: committed transaction's LSN — the journal length right after
        #: its commit), driven after every update transaction is locally
        #: durable and *before* the caller regains control: synchronous
        #: journal shipping — the client is only acknowledged once a
        #: quorum holds the change (see
        #: :class:`repro.core.shard.replication.ReplicatedShard`).  The
        #: hook runs after ``fault_hook`` so the locally-durable-but-
        #: unshipped gap is an enumerable crash boundary.
        self.replicator = None
        # Update-transaction quiesce barrier: ``crash_and_recover`` must
        # not truncate the journal tail while a commit's log force is in
        # flight (the force would mark the *rebuilt* journal durable past
        # records the rebuild never saw).  Pure Python counters on the
        # no-crash path.
        self._updates_inflight = 0
        self._update_drain = None  # event a pending rebuild waits on
        self._rebuilding = None    # event new updates wait on
        #: optional fault hook at *force* boundaries (async mode): called
        #: by the batcher after each force (and quorum ship) completes.
        #: Raising models a crash with exactly that force's records
        #: durable; see :func:`repro.core.faults.arm_force_boundaries`.
        self.force_hook = None
        #: shard id used as the observability key (set by the sharded
        #: service; falls back to the machine name).
        self.obs_shard = None
        #: updates acknowledged before their own redo record was durable.
        self.deferred_acks = 0
        self._async = bool(self.config.async_commit)
        if self._async:
            database.track_reads = True
        # -- async group-commit state (untouched in sync mode) ----------
        self._ack_horizon = 0     # LSNs <= this are ack-clean (durable,
                                  # and quorum-held when replicated)
        self._ack_waiters = []    # (need_lsn, gate) parked in _async_ack
        self._deferred_pending = []  # (lsn, ack time) for ack_to_durable_ms
        self._last_writer = {}    # (table, pk) -> [lsn, owner, prev lsn]
        self._table_writer = {}   # table -> [lsn, owner, prev lsn]
        self._batcher_started = False
        self._batch_wake = None   # parked batcher's wake-up gate
        self._batch_gen = 0       # bumped by every crash: stale forces
                                  # must not mark the new journal durable
        self._crashed = None      # force-boundary crash exception, until
                                  # recovery clears it

    def execute(self, body):
        """Coroutine: run transaction ``body`` with full cost accounting.

        The transaction body itself executes atomically (no yields inside);
        CPU time proportional to its query counts is charged afterwards,
        then the log is forced if anything was written.
        """
        cfg = self.config
        while self._rebuilding is not None:
            # A journal rebuild is swapping tables: admitting this
            # transaction would commit against the table set about to be
            # discarded.  Bounded wait — the rebuild never blocks on a
            # transaction of this node.
            yield self._rebuilding
        self._updates_inflight += 1
        try:
            outcome = self.db.transaction(lambda txn: (body(txn), txn))
            result, txn = outcome
            # This transaction's redo record (if it wrote) is the newest
            # journal entry; its LSN is what the replicator must prove
            # quorum-durable before the caller may be acknowledged.
            commit_lsn = len(self.journal._records)
            if self._async:
                # Dependency bookkeeping must happen before the first
                # yield: registered atomically with the commit, or a
                # concurrent transaction could read this one's effects
                # without seeing it as a dependency.
                dep = self._dep_of(txn)
                if txn.is_update:
                    self._record_writers(txn, commit_lsn)
            cpu = (
                cfg.base_cpu_ms
                + cfg.read_op_cpu_ms * txn.reads
                + cfg.write_op_cpu_ms * txn.writes
            )
            yield from self.machine.compute(cpu)
            if txn.is_update:
                self.update_txns += 1
                if self._async:
                    if self.fault_hook is not None:
                        self.fault_hook()
                    if self.replicator is not None or self._must_force(txn):
                        # Replicated tiers ack at quorum granularity (the
                        # batcher's force epoch covers the ship), and
                        # recovery-protocol records (intents, prepares,
                        # epochs, the applied pointer) must never sit in
                        # the loss window: other shards already hold
                        # state that references them.
                        need = commit_lsn
                    else:
                        need = dep
                    yield from self._async_ack(need, commit_lsn)
                else:
                    if cfg.sync_updates:
                        yield from self.log.force()
                        self.journal.mark_durable()
                    if self.fault_hook is not None:
                        self.fault_hook()
                    if self.replicator is not None:
                        yield from self.replicator(commit_lsn)
                        if obs.TRACER is not None:
                            # The replicator returned without raising: a
                            # quorum holds this commit; the caller may now
                            # be acked.
                            obs.TRACER.event("quorum_ack",
                                             self.machine.sim.now,
                                             lsn=commit_lsn)
            else:
                self.read_txns += 1
                if self._async and dep > self._ack_horizon:
                    # Externalization gate: this read observed state whose
                    # redo is not yet durable.  Acking it would let the
                    # client act on a namespace a crash can still revoke,
                    # so the ack waits for the dependency's force.
                    yield from self._async_ack(dep, 0)
        finally:
            self._updates_inflight -= 1
            if not self._updates_inflight and self._update_drain is not None:
                drain, self._update_drain = self._update_drain, None
                drain.succeed()
        return result

    # -- asynchronous group commit ------------------------------------------

    #: tables whose records other shards may already reference when the
    #: committing operation is acknowledged (coordination intents and
    #: prepares, dedup records, epoch fences, re-partitioning state, the
    #: backup's applied pointer).  Losing them would break the recovery
    #: protocols, not just lose the op — so they always wait for their
    #: force, never ride the deferred-ack path.
    _FORCE_TABLES = frozenset(
        ("intents", "epochs", "repl", "overrides", "partitions"))

    def _must_force(self, txn):
        staged = txn._staged
        for table in self._FORCE_TABLES:
            if table in staged:
                return True
        return False

    def _obs_key(self):
        return self.machine.name if self.obs_shard is None else self.obs_shard

    def _dep_of(self, txn):
        """Highest un-durable LSN this transaction's reads depend on.

        A dependency is a record written by a *different* op chain (the
        executing :class:`~repro.sim.kernel.Process` is the identity —
        RPC handlers run inline in their caller's process) whose redo is
        not yet ack-clean.  A client re-reading its own deferred writes
        owes nobody a force; observing another client's does.
        """
        keys = txn.read_keys
        if not keys:
            return 0
        me = self.machine.sim.current
        dep = 0
        last_writer = self._last_writer
        table_writer = self._table_writer
        for key in keys:
            if key[1] is None:
                entry = table_writer.get(key[0])
            else:
                entry = last_writer.get(key)
            if entry is None:
                continue
            # entry[0] is the newest writer's LSN; when that writer is
            # the reader itself, entry[2] is the newest *foreign* one.
            lsn = entry[0] if entry[1] is not me else entry[2]
            if lsn > dep:
                dep = lsn
        del keys[:]
        return dep

    def _record_writers(self, txn, lsn):
        """Stamp this commit's write set into the last-writer maps.

        Each entry keeps the two most recent distinct-owner writers
        ``[lsn, owner, previous foreign lsn]`` so :meth:`_dep_of` can
        exclude the reader's own writes without losing an older foreign
        one hiding behind them.  Entries are pruned once the horizon
        passes them (:meth:`_advance_horizon`).
        """
        me = self.machine.sim.current
        last_writer = self._last_writer
        table_writer = self._table_writer
        for table, overlay in txn._staged.items():
            entry = table_writer.get(table)
            if entry is None:
                table_writer[table] = [lsn, me, 0]
            elif entry[1] is me:
                entry[0] = lsn
            else:
                entry[2] = entry[0]
                entry[0] = lsn
                entry[1] = me
            for pk in overlay:
                key = (table, pk)
                entry = last_writer.get(key)
                if entry is None:
                    last_writer[key] = [lsn, me, 0]
                elif entry[1] is me:
                    entry[0] = lsn
                else:
                    entry[2] = entry[0]
                    entry[0] = lsn
                    entry[1] = me

    def _async_ack(self, need, commit_lsn):
        """Coroutine: hold the caller until LSN ``need`` is ack-clean.

        ``commit_lsn`` is the caller's own record (0 for a dependent
        read).  The caller is released as soon as the horizon covers
        ``need`` — for most updates that is immediately, the deferred
        ack that makes the async path fast.
        """
        self._kick_batcher()
        sim = self.machine.sim
        if self._crashed is not None:
            # The node died at a force boundary: nothing is acked until
            # recovery, however far the horizon had advanced before.
            raise self._crashed
        if need > self._ack_horizon:
            gate = sim.event()
            self._ack_waiters.append((need, gate))
            yield gate
        deferred = commit_lsn > self._ack_horizon
        if deferred:
            self.deferred_acks += 1
            if obs.METRICS is not None:
                obs.METRICS.incr("deferred_acks", self._obs_key())
                self._deferred_pending.append((commit_lsn, sim.now))
        if obs.TRACER is not None:
            obs.TRACER.event(
                "commit_ack", sim.now, shard=self._obs_key(),
                lsn=commit_lsn, dep=need, deferred=deferred)
            if self.replicator is not None and commit_lsn:
                # The horizon only covers a replicated commit once its
                # force epoch shipped to a quorum.
                obs.TRACER.event("quorum_ack", sim.now, lsn=commit_lsn)

    def _kick_batcher(self):
        wake = self._batch_wake
        if wake is not None:
            self._batch_wake = None
            wake.succeed()
        elif not self._batcher_started:
            self._batcher_started = True
            proc = self.machine.sim.process(
                self._batcher(), name=f"force-batcher:{self.machine.name}")
            # Force spans are roots of their own traces, not children of
            # whichever client op happened to start the batcher.
            proc.ctx = None

    def _batcher(self):
        """The per-node force batcher: one ``log.force()`` per window.

        Parked while nothing is outstanding.  Each round sleeps the
        coalescing window, captures the journal head, forces the log
        once for every record below it, and — on replicated tiers —
        ships the forced span to a quorum; only then does the ack
        horizon advance and release the parked committers.  A crash
        (generation bump) anywhere in flight voids the round: a torn
        force must not mark the rebuilt journal durable.
        """
        sim = self.machine.sim
        while True:
            if self._crashed is not None or (
                    not self._ack_waiters
                    and not self.journal.lost_on_crash):
                gate = sim.event()
                self._batch_wake = gate
                yield gate
                continue
            gen = self._batch_gen
            window = self.config.async_force_window_ms
            if window > 0.0:
                yield sim.timeout(window)
                if gen != self._batch_gen:
                    continue
            head = len(self.journal._records)
            base = self.journal.durable_upto
            started = sim.now
            tracer = obs.TRACER
            span = None
            if tracer is not None:
                span = tracer.start(
                    "force", "group_force", started,
                    shard=self._obs_key(), base=base, head=head)
            try:
                yield from self.log.force()
                if gen != self._batch_gen:
                    if span is not None:
                        tracer.finish(span, sim.now, outcome="stale")
                    continue
                self.journal.mark_durable(head)
                if self.replicator is not None:
                    yield from self.replicator(head)
                    if gen != self._batch_gen:
                        if span is not None:
                            tracer.finish(span, sim.now, outcome="stale")
                        continue
            except BaseException as exc:
                if span is not None:
                    tracer.finish(span, sim.now, outcome=type(exc).__name__)
                if gen == self._batch_gen:
                    # Quorum lost or fenced mid-ship: the batch's waiters
                    # see the failure exactly as sync committers would
                    # from their own inline ship.
                    self._fail_waiters(exc)
                continue
            if span is not None:
                tracer.finish(span, sim.now)
            self._advance_horizon(head, base, started)
            hook = self.force_hook
            if hook is not None:
                try:
                    hook()
                except BaseException as exc:
                    self._async_crash(exc)

    def _advance_horizon(self, head, base, started):
        sim = self.machine.sim
        if head > self._ack_horizon:
            self._ack_horizon = head
        horizon = self._ack_horizon
        if obs.METRICS is not None:
            key = self._obs_key()
            obs.METRICS.observe("commit_batch_size", key, head - base)
            obs.METRICS.observe("group_force_ms", key, sim.now - started)
            if self._deferred_pending:
                keep = []
                for lsn, acked_at in self._deferred_pending:
                    if lsn <= horizon:
                        obs.METRICS.observe(
                            "ack_to_durable_ms", key, sim.now - acked_at)
                    else:
                        keep.append((lsn, acked_at))
                self._deferred_pending = keep
        if self._ack_waiters:
            keep = []
            for entry in self._ack_waiters:
                if entry[0] <= horizon:
                    entry[1].succeed()
                else:
                    keep.append(entry)
            self._ack_waiters = keep
        # Writers below the horizon can no longer be anyone's dependency.
        last_writer = self._last_writer
        if last_writer:
            dead = [k for k, e in last_writer.items() if e[0] <= horizon]
            for k in dead:
                del last_writer[k]
        table_writer = self._table_writer
        if table_writer:
            dead = [t for t, e in table_writer.items() if e[0] <= horizon]
            for t in dead:
                del table_writer[t]

    def _fail_waiters(self, exc):
        waiters, self._ack_waiters = self._ack_waiters, []
        for _need, gate in waiters:
            gate.fail(exc)

    def _async_crash(self, exc):
        """A force-boundary fault hook fired: the node is down.

        Waiters get the crash thrown at their ack gate (their client
        conversations die with the node); the generation bump voids any
        force still in flight; the batcher parks until
        :meth:`crash_and_recover` clears :attr:`_crashed`.
        """
        self._batch_gen += 1
        self._crashed = exc
        self._fail_waiters(exc)

    def checkpoint(self):
        """Coroutine: force the log and make the whole journal durable.

        Under ``sync_updates=False`` this is the lazy Mnesia dump: the only
        point at which recently committed transactions become crash-safe.
        """
        yield from self.log.force()
        self.journal.mark_durable()

    def crash_and_recover(self):
        """Coroutine: crash the node and rebuild tables from the journal.

        Returns the number of committed-but-lost transactions (always 0
        when updates are forced synchronously).  Costs restart time plus
        redo replay proportional to the durable journal length.

        Before touching the journal it *quiesces*: new transactions wait
        on :attr:`_rebuilding`, in-flight ones drain, and the commit log's
        outstanding forces complete.  Without the barrier a commit whose
        force was still in flight when the tail truncation ran would mark
        the rebuilt journal durable past records the rebuild never saw —
        a silently lost committed transaction.  The admission gate above
        this layer leaves exactly that window open for requests it cannot
        see (gate-bypassing recovery RPCs, and the op admitted on the
        gate's closing edge).
        """
        self._rebuilding = self.machine.sim.event()
        if self._async:
            # Void any force in flight (its completion must not mark the
            # rebuilt journal durable) and fail commits still parked on
            # their ack gate — their records are in the tail about to be
            # truncated, and their conversations die with the node.  The
            # thrown gates unwind through ``execute``'s finally, so the
            # drain loop below sees them leave.
            self._batch_gen += 1
            self._crashed = None
            if self._ack_waiters:
                self._fail_waiters(
                    DbError("node crashed before the commit became durable"))
        try:
            while self._updates_inflight:
                if self._update_drain is None:
                    self._update_drain = self.machine.sim.event()
                yield self._update_drain
            yield from self.log.drain()
            lost = yield from self._rebuild_tables()
        finally:
            gate, self._rebuilding = self._rebuilding, None
            gate.succeed()
        return lost

    def _rebuild_tables(self):
        """Coroutine: the rebuild proper (callers hold the quiesce gate)."""
        lost = self.journal.lost_on_crash
        self.recoveries += 1
        records = self.journal.durable_upto
        yield from self.machine.compute(
            self.config.recovery_base_ms
            + self.config.recovery_per_record_ms * records
        )
        yield from self.disk.read(max(1, records) * 256)
        rebuilt = rebuild(self.db, self.journal)
        # The journal's durable prefix carries over; the lost tail is gone.
        del self.journal._records[self.journal.durable_upto:]
        rebuilt.journal = self.journal
        self.db.journal = None
        self.db = rebuilt
        if self._async:
            rebuilt.track_reads = True
            # Nothing above the (truncated) durable prefix exists any
            # more: the dependency maps restart empty and the horizon
            # restarts at the recovered journal head.
            self._last_writer.clear()
            self._table_writer.clear()
            self._deferred_pending = []
            self._ack_horizon = self.journal.durable_upto
        return lost
