"""Simulation wrapper charging virtual-time costs for database work.

Models the Mnesia node of the paper: queries cost CPU on the hosting machine
(Erlang handles its own multicore scheduling, so concurrent transactions use
all CPU slots), and update transactions force a write-ahead log on the node's
local disk — with group commit, so concurrent updaters share forces.  Read
transactions never touch the disk, which is why COFS ``stat`` stays near the
network round-trip time while ``utime`` pays a few milliseconds.
"""

from dataclasses import dataclass

from repro import obs
from repro.cluster.disk import GroupCommitLog
from repro.db.recovery import RedoJournal, rebuild


@dataclass
class DbConfig:
    """Cost model for the database service.

    Defaults are calibrated so a simple read transaction costs ~0.1–0.2 ms of
    CPU and an update transaction ~2.5–3 ms including the log force, matching
    the COFS stat (~1 ms incl. network) and utime (~4 ms) anchors from the
    paper's evaluation (section IV-A).
    """

    base_cpu_ms: float = 0.03        # per-transaction dispatch overhead
    read_op_cpu_ms: float = 0.02     # per read query inside a transaction
    write_op_cpu_ms: float = 0.05    # per write query inside a transaction
    log_force_ms: float = 1.2        # ext3 journal force on the local disk
    log_per_member_ms: float = 0.05  # marginal cost per batched committer
    log_group_max: int = 32          # Mnesia dumps batches of transactions
    sync_updates: bool = True        # ablation hook: skip log forces if False
    recovery_base_ms: float = 200.0  # process restart + log open
    recovery_per_record_ms: float = 0.02  # redo-apply per journal record


class DbService:
    """Hosts a :class:`~repro.db.database.Database` on a simulated machine."""

    def __init__(self, machine, database, disk, config=None):
        self.machine = machine
        self.db = database
        self.config = config or DbConfig()
        self.disk = disk
        self.log = GroupCommitLog(
            machine.sim,
            disk,
            force_ms=self.config.log_force_ms,
            per_member_ms=self.config.log_per_member_ms,
            group_max=self.config.log_group_max,
        )
        self.journal = RedoJournal()
        self.db.journal = self.journal
        self.read_txns = 0
        self.update_txns = 0
        self.recoveries = 0
        #: optional fault-injection hook, called after every update
        #: transaction's commit boundary (once it is as durable as the log
        #: policy makes it).  Raising from the hook models a crash in the
        #: gap after that commit; see :mod:`repro.core.faults`.
        self.fault_hook = None
        #: optional replication hook (coroutine function taking the
        #: committed transaction's LSN — the journal length right after
        #: its commit), driven after every update transaction is locally
        #: durable and *before* the caller regains control: synchronous
        #: journal shipping — the client is only acknowledged once a
        #: quorum holds the change (see
        #: :class:`repro.core.shard.replication.ReplicatedShard`).  The
        #: hook runs after ``fault_hook`` so the locally-durable-but-
        #: unshipped gap is an enumerable crash boundary.
        self.replicator = None
        # Update-transaction quiesce barrier: ``crash_and_recover`` must
        # not truncate the journal tail while a commit's log force is in
        # flight (the force would mark the *rebuilt* journal durable past
        # records the rebuild never saw).  Pure Python counters on the
        # no-crash path.
        self._updates_inflight = 0
        self._update_drain = None  # event a pending rebuild waits on
        self._rebuilding = None    # event new updates wait on

    def execute(self, body):
        """Coroutine: run transaction ``body`` with full cost accounting.

        The transaction body itself executes atomically (no yields inside);
        CPU time proportional to its query counts is charged afterwards,
        then the log is forced if anything was written.
        """
        cfg = self.config
        while self._rebuilding is not None:
            # A journal rebuild is swapping tables: admitting this
            # transaction would commit against the table set about to be
            # discarded.  Bounded wait — the rebuild never blocks on a
            # transaction of this node.
            yield self._rebuilding
        self._updates_inflight += 1
        try:
            outcome = self.db.transaction(lambda txn: (body(txn), txn))
            result, txn = outcome
            # This transaction's redo record (if it wrote) is the newest
            # journal entry; its LSN is what the replicator must prove
            # quorum-durable before the caller may be acknowledged.
            commit_lsn = len(self.journal._records)
            cpu = (
                cfg.base_cpu_ms
                + cfg.read_op_cpu_ms * txn.reads
                + cfg.write_op_cpu_ms * txn.writes
            )
            yield from self.machine.compute(cpu)
            if txn.is_update:
                self.update_txns += 1
                if cfg.sync_updates:
                    yield from self.log.force()
                    self.journal.mark_durable()
                if self.fault_hook is not None:
                    self.fault_hook()
                if self.replicator is not None:
                    yield from self.replicator(commit_lsn)
                    if obs.TRACER is not None:
                        # The replicator returned without raising: a quorum
                        # holds this commit; the caller may now be acked.
                        obs.TRACER.event("quorum_ack", self.machine.sim.now,
                                         lsn=commit_lsn)
            else:
                self.read_txns += 1
        finally:
            self._updates_inflight -= 1
            if not self._updates_inflight and self._update_drain is not None:
                drain, self._update_drain = self._update_drain, None
                drain.succeed()
        return result

    def checkpoint(self):
        """Coroutine: force the log and make the whole journal durable.

        Under ``sync_updates=False`` this is the lazy Mnesia dump: the only
        point at which recently committed transactions become crash-safe.
        """
        yield from self.log.force()
        self.journal.mark_durable()

    def crash_and_recover(self):
        """Coroutine: crash the node and rebuild tables from the journal.

        Returns the number of committed-but-lost transactions (always 0
        when updates are forced synchronously).  Costs restart time plus
        redo replay proportional to the durable journal length.

        Before touching the journal it *quiesces*: new transactions wait
        on :attr:`_rebuilding`, in-flight ones drain, and the commit log's
        outstanding forces complete.  Without the barrier a commit whose
        force was still in flight when the tail truncation ran would mark
        the rebuilt journal durable past records the rebuild never saw —
        a silently lost committed transaction.  The admission gate above
        this layer leaves exactly that window open for requests it cannot
        see (gate-bypassing recovery RPCs, and the op admitted on the
        gate's closing edge).
        """
        self._rebuilding = self.machine.sim.event()
        try:
            while self._updates_inflight:
                if self._update_drain is None:
                    self._update_drain = self.machine.sim.event()
                yield self._update_drain
            yield from self.log.drain()
            lost = yield from self._rebuild_tables()
        finally:
            gate, self._rebuilding = self._rebuilding, None
            gate.succeed()
        return lost

    def _rebuild_tables(self):
        """Coroutine: the rebuild proper (callers hold the quiesce gate)."""
        lost = self.journal.lost_on_crash
        self.recoveries += 1
        records = self.journal.durable_upto
        yield from self.machine.compute(
            self.config.recovery_base_ms
            + self.config.recovery_per_record_ms * records
        )
        yield from self.disk.read(max(1, records) * 256)
        rebuilt = rebuild(self.db, self.journal)
        # The journal's durable prefix carries over; the lost tail is gone.
        del self.journal._records[self.journal.durable_upto:]
        rebuilt.journal = self.journal
        self.db.journal = None
        self.db = rebuilt
        return lost
