"""Simulation wrapper charging virtual-time costs for database work.

Models the Mnesia node of the paper: queries cost CPU on the hosting machine
(Erlang handles its own multicore scheduling, so concurrent transactions use
all CPU slots), and update transactions force a write-ahead log on the node's
local disk — with group commit, so concurrent updaters share forces.  Read
transactions never touch the disk, which is why COFS ``stat`` stays near the
network round-trip time while ``utime`` pays a few milliseconds.
"""

from dataclasses import dataclass

from repro.cluster.disk import GroupCommitLog
from repro.db.recovery import RedoJournal, rebuild


@dataclass
class DbConfig:
    """Cost model for the database service.

    Defaults are calibrated so a simple read transaction costs ~0.1–0.2 ms of
    CPU and an update transaction ~2.5–3 ms including the log force, matching
    the COFS stat (~1 ms incl. network) and utime (~4 ms) anchors from the
    paper's evaluation (section IV-A).
    """

    base_cpu_ms: float = 0.03        # per-transaction dispatch overhead
    read_op_cpu_ms: float = 0.02     # per read query inside a transaction
    write_op_cpu_ms: float = 0.05    # per write query inside a transaction
    log_force_ms: float = 1.2        # ext3 journal force on the local disk
    log_per_member_ms: float = 0.05  # marginal cost per batched committer
    log_group_max: int = 32          # Mnesia dumps batches of transactions
    sync_updates: bool = True        # ablation hook: skip log forces if False
    recovery_base_ms: float = 200.0  # process restart + log open
    recovery_per_record_ms: float = 0.02  # redo-apply per journal record


class DbService:
    """Hosts a :class:`~repro.db.database.Database` on a simulated machine."""

    def __init__(self, machine, database, disk, config=None):
        self.machine = machine
        self.db = database
        self.config = config or DbConfig()
        self.disk = disk
        self.log = GroupCommitLog(
            machine.sim,
            disk,
            force_ms=self.config.log_force_ms,
            per_member_ms=self.config.log_per_member_ms,
            group_max=self.config.log_group_max,
        )
        self.journal = RedoJournal()
        self.db.journal = self.journal
        self.read_txns = 0
        self.update_txns = 0
        self.recoveries = 0
        #: optional fault-injection hook, called after every update
        #: transaction's commit boundary (once it is as durable as the log
        #: policy makes it).  Raising from the hook models a crash in the
        #: gap after that commit; see :mod:`repro.core.faults`.
        self.fault_hook = None

    def execute(self, body):
        """Coroutine: run transaction ``body`` with full cost accounting.

        The transaction body itself executes atomically (no yields inside);
        CPU time proportional to its query counts is charged afterwards,
        then the log is forced if anything was written.
        """
        cfg = self.config
        outcome = self.db.transaction(lambda txn: (body(txn), txn))
        result, txn = outcome
        cpu = (
            cfg.base_cpu_ms
            + cfg.read_op_cpu_ms * txn.reads
            + cfg.write_op_cpu_ms * txn.writes
        )
        yield from self.machine.compute(cpu)
        if txn.is_update:
            self.update_txns += 1
            if cfg.sync_updates:
                yield from self.log.force()
                self.journal.mark_durable()
            if self.fault_hook is not None:
                self.fault_hook()
        else:
            self.read_txns += 1
        return result

    def checkpoint(self):
        """Coroutine: force the log and make the whole journal durable.

        Under ``sync_updates=False`` this is the lazy Mnesia dump: the only
        point at which recently committed transactions become crash-safe.
        """
        yield from self.log.force()
        self.journal.mark_durable()

    def crash_and_recover(self):
        """Coroutine: crash the node and rebuild tables from the journal.

        Returns the number of committed-but-lost transactions (always 0
        when updates are forced synchronously).  Costs restart time plus
        redo replay proportional to the durable journal length.
        """
        lost = self.journal.lost_on_crash
        self.recoveries += 1
        records = self.journal.durable_upto
        yield from self.machine.compute(
            self.config.recovery_base_ms
            + self.config.recovery_per_record_ms * records
        )
        yield from self.disk.read(max(1, records) * 256)
        rebuilt = rebuild(self.db, self.journal)
        # The journal's durable prefix carries over; the lost tail is gone.
        del self.journal._records[self.journal.durable_upto:]
        rebuilt.journal = self.journal
        self.db.journal = None
        self.db = rebuilt
        return lost
