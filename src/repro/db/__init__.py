"""A small transactional table store, in the spirit of Erlang/OTP Mnesia.

The paper's COFS metadata service keeps the virtual namespace "as a small set
of database tables" in Mnesia, translating pure metadata operations into
simple queries inside transactions.  This package provides the equivalent:

- :class:`Table` — keyed records (flat dicts) with secondary hash indexes,
- :class:`Database` + :class:`Transaction` — atomic multi-table transactions
  with read-your-writes, full rollback on abort, and index maintenance,
- :class:`DbService` — the simulation-facing wrapper that charges CPU per
  query and forces a group-commit write-ahead log for update transactions
  (read-only transactions never touch the disk — this asymmetry is what
  makes COFS ``stat`` ≈ 1 ms but ``utime`` ≈ 4 ms in the paper).

The pure layer (tables/transactions) is fully usable outside the simulator,
which is how most of its tests exercise it.
"""

from repro.db.database import Database, Transaction
from repro.db.errors import AbortError, DbError, DuplicateKey, NoSuchTable
from repro.db.service import DbConfig, DbService
from repro.db.table import Table

__all__ = [
    "AbortError",
    "Database",
    "DbConfig",
    "DbError",
    "DbService",
    "DuplicateKey",
    "NoSuchTable",
    "Table",
    "Transaction",
]
