"""Atomic transactions over a set of tables.

A transaction stages its writes in a per-table overlay; queries merge the
overlay with the base tables (read-your-writes).  Commit applies the staged
operations to the tables; any exception (including an explicit ``abort``)
discards the overlay, leaving the tables untouched.  Because the simulator
only preempts at ``yield`` points and transaction bodies are pure Python,
committed transactions are trivially serializable; the service wrapper
charges their virtual-time costs.

Reads hand out read-only views (see :mod:`repro.db.table`); callers that
want to modify a record take a mutable copy via :meth:`Transaction.
read_for_update` (or ``dict(view)``) and stage it back with ``write``.
"""

from types import MappingProxyType

from repro.db.errors import AbortError, DbError, DuplicateKey, NoSuchTable
from repro.db.table import Table

_DELETED = object()


class Database:
    """A named collection of tables with a transaction runner."""

    def __init__(self, name="db"):
        self.name = name
        self.tables = {}
        self.commits = 0
        self.aborts = 0
        #: optional :class:`repro.db.recovery.RedoJournal`; when attached,
        #: every committed transaction's redo record is appended to it.
        self.journal = None
        #: when True, transactions record their read keys on
        #: ``txn.read_keys`` — the asynchronous commit path's dependency
        #: tracker needs the read set to decide how long an ack may be
        #: deferred.  Off by default: the only cost then is one ``None``
        #: check per query.
        self.track_reads = False

    def create_table(self, name, key, indexes=()):
        """Create and return a new :class:`Table`."""
        if name in self.tables:
            raise DbError(f"database {self.name}: table {name!r} exists")
        table = Table(name, key, indexes)
        self.tables[name] = table
        return table

    def table(self, name):
        table = self.tables.get(name)
        if table is None:
            raise NoSuchTable(f"database {self.name}: no table {name!r}")
        return table

    def transaction(self, body):
        """Run ``body(txn)`` atomically; returns its result.

        On any exception the staged changes are discarded and the exception
        propagates (wrapped in :class:`AbortError` only when raised through
        :meth:`Transaction.abort`).
        """
        txn = Transaction(self)
        try:
            result = body(txn)
        except Exception:
            self.aborts += 1
            raise
        txn._apply()
        self.commits += 1
        if self.journal is not None and txn._staged:
            from repro.db.recovery import journal_of

            self.journal.append(journal_of(txn))
        return result


class Transaction:
    """Staged view over a database; see :class:`Database.transaction`."""

    def __init__(self, database):
        self._db = database
        self._staged = {}  # table -> {pk: record dict or _DELETED}
        self.reads = 0
        self.writes = 0
        #: read set for dependency tracking: ``(table, pk)`` per point
        #: read, ``(table, None)`` per scan (a scan's result depends on
        #: every writer of the table).  None unless the database tracks.
        self.read_keys = [] if database.track_reads else None

    # -- queries -------------------------------------------------------------

    def read(self, table_name, pk):
        """Read-only view of record ``pk`` as this transaction sees it."""
        self.reads += 1
        if self.read_keys is not None:
            self.read_keys.append((table_name, pk))
        overlay = self._staged.get(table_name)
        if overlay is not None:
            staged = overlay.get(pk)
            if staged is not None:
                if staged is _DELETED:
                    return None
                return MappingProxyType(staged)
        return self._db.table(table_name).read(pk)

    def read_for_update(self, table_name, pk):
        """Mutable copy of record ``pk`` (stage it back with ``write``)."""
        row = self.read(table_name, pk)
        return dict(row) if row is not None else None

    def match(self, table_name, **pattern):
        """All records matching ``pattern``, as this transaction sees them.

        Only this table's staged keys are overlaid — staging churn on other
        tables never slows a query down.
        """
        self.reads += 1
        if self.read_keys is not None:
            self.read_keys.append((table_name, None))
        table = self._db.table(table_name)
        merged = {}
        key_field = table.key
        for record in table.match(**pattern):
            merged[record[key_field]] = record
        overlay = self._staged.get(table_name)
        if overlay:
            for pk, staged in overlay.items():
                if staged is _DELETED:
                    merged.pop(pk, None)
                elif all(staged.get(f) == v for f, v in pattern.items()):
                    merged[pk] = MappingProxyType(staged)
                else:
                    merged.pop(pk, None)
        return list(merged.values())

    def index_read(self, table_name, field, value):
        """Index lookup, staged-aware (delegates to :meth:`match`)."""
        table = self._db.table(table_name)
        if field not in table.index_fields and field != table.key:
            raise DbError(f"table {table_name}: no index on {field!r}")
        return self.match(table_name, **{field: value})

    # -- mutation ----------------------------------------------------------------

    def _overlay(self, table_name):
        overlay = self._staged.get(table_name)
        if overlay is None:
            overlay = self._staged[table_name] = {}
        return overlay

    def insert(self, table_name, record):
        """Stage a new record; duplicate keys abort immediately."""
        table = self._db.table(table_name)
        pk = table._pk_of(record)
        overlay = self._overlay(table_name)
        staged = overlay.get(pk)
        if staged is _DELETED:
            exists = False
        elif staged is not None:
            exists = True
        else:
            exists = pk in table
        if exists:
            raise DuplicateKey(f"table {table_name}: key {pk!r} already present")
        self.writes += 1
        overlay[pk] = dict(record)

    def write(self, table_name, record):
        """Stage an upsert of ``record``."""
        table = self._db.table(table_name)
        pk = table._pk_of(record)
        self.writes += 1
        self._overlay(table_name)[pk] = dict(record)

    def delete(self, table_name, pk):
        """Stage deletion of ``pk``."""
        self._db.table(table_name)
        self.writes += 1
        self._overlay(table_name)[pk] = _DELETED

    def abort(self, reason=None):
        """Abort the transaction; raises :class:`AbortError`."""
        raise AbortError(reason)

    @property
    def is_update(self):
        """True if the transaction staged any mutation."""
        return bool(self._staged)

    # -- commit ---------------------------------------------------------------------

    def _apply(self):
        for table_name, overlay in self._staged.items():
            table = self._db.table(table_name)
            for pk, staged in overlay.items():
                if staged is _DELETED:
                    table.delete(pk)
                else:
                    table.write(staged)
