"""Simulated cluster network: links, switches, routing and RPC transport.

The testbed in the paper is a blade center with an internal 1 Gb switch, two
external file servers on 1 Gb links, and (for the 64-node experiment) extra
blade centers chained through additional switches with shared uplinks.  This
package models exactly that: full-duplex links with latency and bandwidth,
store-and-forward forwarding across switches, FIFO serialization per link
direction (so congestion emerges under load), and an RPC abstraction used by
every distributed service in the reproduction.
"""

from repro.net.link import Link
from repro.net.topology import Topology
from repro.net.transport import Network, RemoteError

__all__ = ["Link", "Network", "RemoteError", "Topology"]
