"""Cluster topology: hosts, switches, full-duplex links and routing.

The topology is an undirected graph (networkx) whose edges carry a pair of
simplex :class:`~repro.net.link.Link` objects, one per direction.  Routes are
shortest paths, computed once and cached — cluster topologies here are static.
"""

import networkx as nx

from repro.net.link import Link


class Topology:
    """The wiring diagram of the simulated cluster."""

    HOST = "host"
    SWITCH = "switch"

    def __init__(self, sim):
        self.sim = sim
        self.graph = nx.Graph()
        self._route_cache = {}

    # -- construction --------------------------------------------------------

    def add_host(self, name):
        """Register a computing element (blade, server) called ``name``."""
        self._add_node(name, self.HOST)
        return name

    def add_switch(self, name):
        """Register a switch called ``name``."""
        self._add_node(name, self.SWITCH)
        return name

    def _add_node(self, name, kind):
        if name in self.graph:
            raise ValueError(f"duplicate topology node {name!r}")
        self.graph.add_node(name, kind=kind)

    def add_link(self, a, b, bandwidth, latency):
        """Wire ``a`` and ``b`` with a full-duplex link.

        ``bandwidth`` is bytes/ms per direction, ``latency`` the one-way
        propagation delay in ms.
        """
        for end in (a, b):
            if end not in self.graph:
                raise ValueError(f"unknown topology node {end!r}")
        if self.graph.has_edge(a, b):
            raise ValueError(f"duplicate link {a!r} <-> {b!r}")
        forward = Link(self.sim, f"{a}->{b}", bandwidth, latency)
        backward = Link(self.sim, f"{b}->{a}", bandwidth, latency)
        self.graph.add_edge(a, b, links={(a, b): forward, (b, a): backward})
        self._route_cache.clear()

    # -- queries --------------------------------------------------------------

    def is_host(self, name):
        return self.graph.nodes[name]["kind"] == self.HOST

    def hosts(self):
        """All host names, sorted."""
        return sorted(
            n for n, data in self.graph.nodes(data=True) if data["kind"] == self.HOST
        )

    def link(self, a, b):
        """The simplex link carrying traffic from ``a`` to ``b``."""
        return self.graph.edges[a, b]["links"][(a, b)]

    def route(self, src, dst):
        """The list of simplex links from ``src`` to ``dst`` (cached)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            route = []
        else:
            path = nx.shortest_path(self.graph, src, dst)
            route = [self.link(a, b) for a, b in zip(path, path[1:])]
        self._route_cache[key] = route
        return route

    def hop_count(self, src, dst):
        """Number of links between ``src`` and ``dst``."""
        return len(self.route(src, dst))
