"""Message transport and RPC over the simulated topology.

:class:`Network` moves messages hop by hop (store-and-forward) along cached
routes, and layers a synchronous RPC abstraction on top: the caller's process
blocks until the reply message has fully returned.  Service-side exceptions
deriving from :class:`Exception` are carried back in the reply and re-raised
at the caller (so e.g. filesystem errors keep POSIX semantics across nodes);
the reply transfer is still paid.

Small messages on an all-idle route take a collapsed fast path: the whole
store-and-forward traversal is one scheduled completion event (the sum of
the per-hop serialization + propagation delays, accumulated with the same
float rounding) instead of one generator and one timeout per hop.  Wire
occupancy is checked for every hop at *send* time rather than at the
message's arrival at each hop, and per-link counters are credited at send
time — a deliberate approximation in the same spirit as the pre-existing
small-message fast path (their wire time is negligible next to the effects
under study); a route with any busy or queued link falls back to exact
per-hop modelling.  The repository's results oracle confirms the collapse
leaves every figure's simulated results unchanged.
"""

from repro.net.link import Link
from repro.sim.events import Timeout

_FAST_PATH_BYTES = Link.FAST_PATH_BYTES


class RemoteError(RuntimeError):
    """An RPC failed structurally (unknown service/method)."""


class Network:
    """Store-and-forward message delivery plus RPC between machines."""

    def __init__(self, sim, topology):
        self.sim = sim
        self.topology = topology
        self.messages_sent = 0
        self.bytes_sent = 0
        self._fast_routes = {}  # (src, dst) -> [(wire, bandwidth, latency, link)]

    # -- raw transfers ---------------------------------------------------------

    def transfer(self, src_host, dst_host, size):
        """Move ``size`` bytes from ``src_host`` to ``dst_host``.

        Returns an iterable to ``yield from``; completes at full delivery.
        A zero-hop transfer (same host) costs nothing: local service calls
        do not touch the network.
        """
        key = (src_host, dst_host)
        hops = self._fast_routes.get(key)
        if hops is None:
            hops = self._fast_routes[key] = [
                (link._wire, link.bandwidth, link.latency, link)
                for link in self.topology.route(src_host, dst_host)
            ]
        self.messages_sent += 1
        self.bytes_sent += size
        if not hops:
            return ()
        if size < _FAST_PATH_BYTES:
            sim = self.sim
            # Accumulate the *absolute* arrival time hop by hop, with the
            # same float rounding the per-hop timeouts would produce.
            when = sim.now
            for wire, bandwidth, latency, _link in hops:
                if wire.users or wire.queue:
                    break
                when += size / bandwidth + latency
            else:
                for _wire, _bw, _lat, link in hops:
                    link.bytes_carried += size
                    link.messages_carried += 1
                return (Timeout(sim, when, absolute=True),)
        return self._transfer_hops(
            [link for _wire, _bw, _lat, link in hops], size
        )

    def _transfer_hops(self, route, size):
        """Coroutine: the per-hop store-and-forward path (contended links)."""
        for link in route:
            yield from link.transmit(size)

    def rpc(self, src, dst, service, method, args=(), kwargs=None,
            req_size=512, resp_size=512):
        """Coroutine: invoke ``service.method(*args, **kwargs)`` on ``dst``.

        ``src`` and ``dst`` are :class:`repro.cluster.machine.Machine`
        objects.  Returns the handler's return value; re-raises handler
        exceptions at the caller after the reply transfer.
        """
        yield from self.transfer(src.host, dst.host, req_size)
        handler = dst.handler(service, method)
        failure = None
        value = None
        try:
            value = yield from handler(*args, **(kwargs or {}))
        except Exception as exc:  # carried back in the reply
            failure = exc
        yield from self.transfer(dst.host, src.host, resp_size)
        if failure is not None:
            raise failure
        return value
