"""Message transport and RPC over the simulated topology.

:class:`Network` moves messages hop by hop (store-and-forward) along cached
routes, and layers a synchronous RPC abstraction on top: the caller's process
blocks until the reply message has fully returned.  Service-side exceptions
deriving from :class:`Exception` are carried back in the reply and re-raised
at the caller (so e.g. filesystem errors keep POSIX semantics across nodes);
the reply transfer is still paid.
"""


class RemoteError(RuntimeError):
    """An RPC failed structurally (unknown service/method)."""


class Network:
    """Store-and-forward message delivery plus RPC between machines."""

    def __init__(self, sim, topology):
        self.sim = sim
        self.topology = topology
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- raw transfers ---------------------------------------------------------

    def transfer(self, src_host, dst_host, size):
        """Coroutine: move ``size`` bytes from ``src_host`` to ``dst_host``.

        Completes at full delivery.  A zero-hop transfer (same host) costs
        nothing: local service calls do not touch the network.
        """
        route = self.topology.route(src_host, dst_host)
        self.messages_sent += 1
        self.bytes_sent += size
        for link in route:
            yield from link.transmit(size)

    def rpc(self, src, dst, service, method, args=(), kwargs=None,
            req_size=512, resp_size=512):
        """Coroutine: invoke ``service.method(*args, **kwargs)`` on ``dst``.

        ``src`` and ``dst`` are :class:`repro.cluster.machine.Machine`
        objects.  Returns the handler's return value; re-raises handler
        exceptions at the caller after the reply transfer.
        """
        yield from self.transfer(src.host, dst.host, req_size)
        handler = dst.handler(service, method)
        failure = None
        value = None
        try:
            value = yield from handler(*args, **(kwargs or {}))
        except Exception as exc:  # carried back in the reply
            failure = exc
        yield from self.transfer(dst.host, src.host, resp_size)
        if failure is not None:
            raise failure
        return value
