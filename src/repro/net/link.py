"""Simplex network links with latency, bandwidth and FIFO serialization."""

from repro.sim.resources import Resource


class Link:
    """One direction of a physical link.

    A transmission occupies the link for ``size / bandwidth`` (serialization
    delay, FIFO among competing senders) and is delivered ``latency`` ms
    after it leaves the wire (propagation, not occupying the link).
    """

    def __init__(self, sim, name, bandwidth, latency):
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be >= 0")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth  # bytes per ms
        self.latency = latency      # ms
        self._wire = Resource(sim, capacity=1)
        self.bytes_carried = 0
        self.messages_carried = 0

    def __repr__(self):
        return f"<Link {self.name} bw={self.bandwidth:.0f}B/ms lat={self.latency}ms>"

    def transmit_time(self, size):
        """Pure serialization delay for ``size`` bytes (no queueing)."""
        return size / self.bandwidth

    #: messages below this size take the uncontended fast path (their wire
    #: time is microseconds; modelling their queueing would cost far more
    #: simulation time than the fidelity is worth).
    FAST_PATH_BYTES = 64 * 1024

    def transmit(self, size):
        """Carry ``size`` bytes across this hop (``yield from`` the result).

        Completes when the message has fully arrived at the other end
        (store-and-forward: a following hop may only start then).  Small
        messages on an idle link skip the FIFO bookkeeping entirely — the
        fast path is a bare one-event tuple, no generator frame.  Note the
        carried-bytes/messages counters are credited at send time on this
        path (delivery time on the queued path); they are end-of-run
        diagnostics, not instantaneous utilization gauges.
        """
        wire = self._wire
        if size < self.FAST_PATH_BYTES and not wire.users and not wire.queue:
            self.bytes_carried += size
            self.messages_carried += 1
            return (self.sim.timeout(self.transmit_time(size) + self.latency),)
        return self._transmit_queued(size)

    def _transmit_queued(self, size):
        """Coroutine: the FIFO-serialized path for large/contended messages."""
        wire = self._wire
        claim = wire.request_nowait()
        if claim is None:
            claim = wire.request()
            yield claim
        try:
            yield self.sim.timeout(self.transmit_time(size))
        finally:
            wire.release(claim)
        if self.latency:
            yield self.sim.timeout(self.latency)
        self.bytes_carried += size
        self.messages_carried += 1

    @property
    def queued(self):
        """Number of messages waiting for the wire (diagnostics)."""
        return len(self._wire.queue)
