"""Contended resources and queues.

:class:`Resource` models anything with finite service slots (a CPU, a disk, a
link, a lock): processes ``yield`` a :class:`Request` and run once granted.
:class:`Store` is an unbounded FIFO of items with blocking ``get``.
"""

from collections import deque

from repro.sim.errors import SimError
from repro.sim.events import PENDING, Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            yield sim.timeout(service_time)
    """

    __slots__ = ("resource",)

    def __init__(self, resource):
        # Inlined Event.__init__ — requests are allocated on every resource
        # acquire, which makes this one of the kernel's hottest sites.
        self.sim = resource.sim
        self.callbacks = None
        self._value = PENDING
        self._ok = None
        self._processed = False
        self.resource = resource

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False


class Resource:
    """A FIFO-served pool of ``capacity`` identical slots."""

    def __init__(self, sim, capacity=1):
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users = set()
        self.queue = deque()

    def __repr__(self):
        return (
            f"<Resource capacity={self.capacity} busy={len(self.users)} "
            f"queued={len(self.queue)}>"
        )

    @property
    def count(self):
        """Number of slots currently held."""
        return len(self.users)

    def request(self):
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.add(req)
            req.succeed(req)
        else:
            self.queue.append(req)
        return req

    def request_nowait(self):
        """A synchronously granted :class:`Request`, or None if it would
        queue.

        The fast path for uncontended resources: the claim is granted
        without a grant event (the caller proceeds in the same loop turn
        instead of being resumed one turn later), which shaves one event
        off every idle acquire.  Release it with :meth:`release` (or use
        it as a context manager).
        """
        if len(self.users) < self.capacity and not self.queue:
            req = Request(self)
            req._ok = True
            req._value = req
            req._processed = True
            self.users.add(req)
            return req
        return None

    def release(self, request):
        """Return a slot; grants the next queued request, if any.

        Releasing an unqueued, ungranted request is an error.  Releasing a
        request that is still queued cancels it.
        """
        if request in self.users:
            self.users.remove(request)
            while self.queue:
                nxt = self.queue.popleft()
                self.users.add(nxt)
                nxt.succeed(nxt)
                return
            return
        try:
            self.queue.remove(request)
        except ValueError:
            raise SimError("release() of a request not held or queued") from None

    def acquire(self):
        """Coroutine helper: ``req = yield from resource.acquire()``."""
        req = self.request()
        yield req
        return req


class Store:
    """Unbounded FIFO of items with blocking retrieval."""

    def __init__(self, sim):
        self.sim = sim
        self.items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self.items)

    def put(self, item):
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self):
        """Event that fires with the next item (immediately if available)."""
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event
