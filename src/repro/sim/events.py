"""Waitable events for the simulation kernel.

An :class:`Event` is the unit a process can ``yield`` on.  Events are
*triggered* (with a value, or a failure) and later *processed* by the event
loop, at which point the callbacks registered on them run.  The
trigger/process split keeps callback execution inside the event loop, which
makes ordering deterministic.
"""

from repro.sim.errors import SimError

PENDING = object()


class Event:
    """A one-shot waitable occurrence in virtual time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them for
    processing at the current simulation time.  Processes that ``yield`` an
    event are resumed when it is processed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._processed = False

    @property
    def processed(self):
        """True once the event loop has run this event's callbacks."""
        return self._processed

    @property
    def triggered(self):
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def ok(self):
        """True if the event succeeded; meaningless while pending."""
        return bool(self._ok)

    @property
    def value(self):
        """The success value or failure exception of the event."""
        if self._value is PENDING:
            raise SimError("event value is not yet available")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimError(f"event {self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception):
        """Trigger the event as failed with ``exception``.

        Waiting processes will have the exception thrown into them.
        """
        if self._value is not PENDING:
            raise SimError(f"event {self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self)
        return self


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule_trigger(self, delay, True, value)


class _Condition(Event):
    """Base class for events composed of several child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim, events):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event.triggered:
                # Already-triggered children are observed via a no-delay
                # callback so ordering stays inside the event loop.
                probe = Event(sim)
                probe.callbacks.append(lambda _e, child=event: self._observe(child))
                probe.succeed()
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event):
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    The value is the list of child values in construction order.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _observe(self, event):
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if not self._remaining:
            self.succeed([child.value for child in self.events])


class AnyOf(_Condition):
    """Succeeds when the first child event succeeds (value = that child's).

    Fails if the first child to trigger fails.
    """

    __slots__ = ()

    def _observe(self, event):
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)
