"""Waitable events for the simulation kernel.

An :class:`Event` is the unit a process can ``yield`` on.  Events are
*triggered* (with a value, or a failure) and later *processed* by the event
loop, at which point the callbacks registered on them run.  The
trigger/process split keeps callback execution inside the event loop, which
makes ordering deterministic.

Hot-path invariants (relied on throughout the kernel):

- the loop is single-threaded and never preempts between yields, so event
  state transitions are atomic from the perspective of processes;
- ``callbacks`` is lazily allocated: ``None`` means "no callbacks yet" and
  saves a list allocation for the (very common) events nobody waits on or
  that exactly one process resumes through;
- heap entries are flat tuples ``(when, seq, kind, obj, ok, value)``; the
  ``kind`` tags below tell :meth:`repro.sim.kernel.Simulator.run` how to
  dispatch without allocating payload tuples or probe events.
"""

from heapq import heappush

from repro.sim.errors import SimError

PENDING = object()

#: heap-entry kinds (see ``Simulator.run``): process an already-triggered
#: event's callbacks; trigger an event with (ok, value) then process it;
#: resume a process generator directly; invoke a bare callable.
KIND_PROCESS = 0
KIND_TRIGGER = 1
KIND_RESUME = 2
KIND_CALL = 3


class Event:
    """A one-shot waitable occurrence in virtual time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them for
    processing at the current simulation time.  Processes that ``yield`` an
    event are resumed when it is processed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = None
        self._value = PENDING
        self._ok = None
        self._processed = False

    @property
    def processed(self):
        """True once the event loop has run this event's callbacks."""
        return self._processed

    @property
    def triggered(self):
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def ok(self):
        """True if the event succeeded; meaningless while pending."""
        return bool(self._ok)

    @property
    def value(self):
        """The success value or failure exception of the event."""
        if self._value is PENDING:
            raise SimError("event value is not yet available")
        return self._value

    def add_callback(self, callback):
        """Register ``callback(event)`` to run when the event is processed.

        ``callbacks`` holds None, a single callable (the overwhelmingly
        common case: one waiting process), or a list of callables.
        """
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = callback
        elif type(callbacks) is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimError(f"event {self!r} has already been triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._sequence += 1
        heappush(sim._heap,
                 (sim.now, sim._sequence, KIND_PROCESS, self, None, None))
        return self

    def fail(self, exception):
        """Trigger the event as failed with ``exception``.

        Waiting processes will have the exception thrown into them.
        """
        if self._value is not PENDING:
            raise SimError(f"event {self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._sequence += 1
        heappush(sim._heap,
                 (sim.now, sim._sequence, KIND_PROCESS, self, None, None))
        return self


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay.

    The constructor is the kernel's hottest allocation site, so it inlines
    the base initialiser and schedules straight onto the heap: one object,
    one tuple, no callbacks list, no payload tuple.
    """

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None, *, absolute=False):
        if absolute:
            # ``delay`` is an absolute virtual time.  Scheduling at the
            # caller-computed instant (rather than now + (when - now))
            # keeps collapsed multi-hop delays bit-identical to the
            # hop-by-hop float accumulation they replace.
            when = delay
            delay = when - sim.now
        else:
            when = sim.now + delay
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = None
        self._value = PENDING
        self._ok = None
        self._processed = False
        self.delay = delay
        sim._sequence += 1
        heappush(sim._heap,
                 (when, sim._sequence, KIND_TRIGGER, self, True, value))


class _Condition(Event):
    """Base class for events composed of several child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim, events):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event._value is not PENDING:
                # Already-triggered children are observed via a no-delay
                # scheduled call so ordering stays inside the event loop.
                sim._sequence += 1
                heappush(sim._heap,
                         (sim.now, sim._sequence, KIND_CALL, self._observe,
                          None, event))
            else:
                event.add_callback(self._observe)

    def _observe(self, event):
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    The value is the list of child values in construction order.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _observe(self, event):
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if not self._remaining:
            self.succeed([child.value for child in self.events])


class AnyOf(_Condition):
    """Succeeds when the first child event succeeds (value = that child's).

    Fails if the first child to trigger fails.
    """

    __slots__ = ()

    def _observe(self, event):
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)
