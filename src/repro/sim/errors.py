"""Exception types used by the simulation kernel."""


class SimError(RuntimeError):
    """Base class for simulation kernel errors."""


class SimInterrupt(SimError):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the object passed to
    :meth:`repro.sim.kernel.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause
