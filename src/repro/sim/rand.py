"""Deterministic named random streams.

Every stochastic element of the simulation (placement randomization, workload
think-time jitter, IOR random offsets, ...) draws from its own named stream so
that adding randomness to one component never perturbs another, and runs are
bit-for-bit reproducible from a single seed.
"""

import hashlib
import random


def derive_seed(seed, name):
    """Stable 64-bit child seed for stream ``name`` under root ``seed``."""
    digest = hashlib.blake2b(
        f"{seed}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RandomStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name):
        """A child :class:`RandomStreams` namespace rooted at ``name``."""
        return RandomStreams(derive_seed(self.seed, name))
