"""Deterministic discrete-event simulation kernel.

This package provides the minimal process-based simulation machinery the
reproduction is built on: an event heap with a virtual clock, generator-based
processes, waitable events, FIFO resources, stores, seeded random-number
streams and statistics collectors.

The style is intentionally close to SimPy so the higher layers read naturally:

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.5)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"

All timing in the reproduction is expressed in **milliseconds** of virtual
time (the paper reports per-operation times in ms).
"""

from repro.sim.errors import SimError, SimInterrupt
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Process, Simulator
from repro.sim.rand import RandomStreams
from repro.sim.resources import Request, Resource, Store
from repro.sim.stats import Counter, OpRecorder, SummaryStats, TimeWeighted

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "OpRecorder",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimError",
    "SimInterrupt",
    "Simulator",
    "Store",
    "SummaryStats",
    "TimeWeighted",
    "Timeout",
]
