"""Statistics collectors for simulation measurements.

The benchmark harness reports the same quantities the paper does: average
time per operation per configuration, plus aggregate rates for IOR.  The
collectors here keep running summaries (and optionally raw samples, for
percentiles) keyed by operation name.
"""

import math
from collections import defaultdict


class SummaryStats:
    """Streaming mean/variance/min/max over a sequence of samples."""

    __slots__ = ("n", "mean", "_m2", "min", "max", "total")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x):
        """Fold sample ``x`` into the summary (Welford update)."""
        self.n += 1
        self.total += x
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def variance(self):
        """Sample variance (0 for fewer than two samples)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def stdev(self):
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other):
        """Fold another :class:`SummaryStats` into this one."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return self
        n = self.n + other.n
        delta = other.mean - self.mean
        self.mean += delta * other.n / n
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def __repr__(self):
        if not self.n:
            return "<SummaryStats empty>"
        return (
            f"<SummaryStats n={self.n} mean={self.mean:.4f} "
            f"min={self.min:.4f} max={self.max:.4f}>"
        )


class SampleStats(SummaryStats):
    """A :class:`SummaryStats` that also retains its raw samples.

    The retained samples make percentiles available (``percentile(q)``,
    ``p50``, ``p99``); everything else behaves like the streaming summary.
    """

    __slots__ = ("samples",)

    def __init__(self):
        super().__init__()
        self.samples = []

    def add(self, x):
        super().add(x)
        self.samples.append(x)

    def percentile(self, q):
        """The ``q``-quantile (0..1) of the retained samples."""
        return percentile(self.samples, q)

    @property
    def p50(self):
        return percentile(self.samples, 0.50)

    @property
    def p99(self):
        return percentile(self.samples, 0.99)

    def merge(self, other):
        super().merge(other)
        if isinstance(other, SampleStats):
            self.samples.extend(other.samples)
        return self


def percentile(samples, q):
    """The ``q``-quantile (0..1) of ``samples`` by linear interpolation."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Counter:
    """A defaultdict-style event counter with a stable repr."""

    def __init__(self):
        self._counts = defaultdict(int)

    def incr(self, key, by=1):
        """Add ``by`` to the count of ``key``."""
        self._counts[key] += by

    def __getitem__(self, key):
        return self._counts.get(key, 0)

    def __contains__(self, key):
        return key in self._counts

    def items(self):
        return sorted(self._counts.items())

    def as_dict(self):
        return dict(self._counts)

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"<Counter {inner}>"


class OpRecorder:
    """Per-operation latency recorder.

    ``record(op, elapsed)`` folds a sample; ``mean(op)`` and friends read the
    summaries back.  With ``keep_samples=True``, raw samples are retained so
    percentiles can be computed.
    """

    def __init__(self, keep_samples=False):
        self.keep_samples = keep_samples
        self._summaries = defaultdict(SummaryStats)
        self._samples = defaultdict(list)

    def record(self, op, elapsed):
        """Record one ``elapsed`` (ms) sample for operation ``op``."""
        self._summaries[op].add(elapsed)
        if self.keep_samples:
            self._samples[op].append(elapsed)

    def ops(self):
        """Names of all recorded operations, sorted."""
        return sorted(self._summaries)

    def count(self, op):
        return self._summaries[op].n

    def mean(self, op):
        """Average latency of ``op`` in ms (0.0 if never recorded)."""
        summary = self._summaries.get(op)
        return summary.mean if summary else 0.0

    def total(self, op):
        summary = self._summaries.get(op)
        return summary.total if summary else 0.0

    def summary(self, op):
        return self._summaries[op]

    def samples(self, op):
        if not self.keep_samples:
            raise ValueError("OpRecorder was created with keep_samples=False")
        return list(self._samples[op])

    def percentile(self, op, q):
        return percentile(self.samples(op), q)

    def p50(self, op):
        """Median latency of ``op`` (requires ``keep_samples=True``)."""
        return percentile(self.samples(op), 0.50)

    def p99(self, op):
        """99th-percentile latency of ``op`` (requires ``keep_samples=True``)."""
        return percentile(self.samples(op), 0.99)

    def merge(self, other):
        """Fold another recorder's summaries (and samples) into this one."""
        for op, summary in other._summaries.items():
            self._summaries[op].merge(summary)
        if self.keep_samples and other.keep_samples:
            for op, samples in other._samples.items():
                self._samples[op].extend(samples)
        return self


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Used for utilization-style metrics (queue depth, tokens held, ...): call
    ``update(now, level)`` at every change; ``average(now)`` integrates.
    """

    def __init__(self, t0=0.0, level=0.0):
        self._last_t = t0
        self._level = level
        self._area = 0.0
        self._t0 = t0

    @property
    def level(self):
        return self._level

    def update(self, now, level):
        """Advance to ``now`` and set the new signal ``level``."""
        if now < self._last_t:
            raise ValueError("TimeWeighted.update() moved backwards in time")
        self._area += self._level * (now - self._last_t)
        self._last_t = now
        self._level = level

    def average(self, now):
        """Time-weighted mean of the signal over [t0, now]."""
        span = now - self._t0
        if span <= 0:
            return self._level
        area = self._area + self._level * (now - self._last_t)
        return area / span
