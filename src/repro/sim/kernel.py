"""The event loop and process machinery.

:class:`Simulator` owns the virtual clock and the event heap.
:class:`Process` drives a generator: every value the generator yields must be
an :class:`~repro.sim.events.Event`; the process suspends until the event is
processed and is resumed with the event's value (or has the event's exception
thrown into it).  A process is itself an event that triggers when the
generator returns.
"""

import heapq
from inspect import isgenerator

from repro.sim.errors import SimError, SimInterrupt
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class Process(Event):
    """A running coroutine, also waitable as an event (fires at completion)."""

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim, generator, name=None):
        if not isgenerator(generator):
            raise SimError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        # Kick off the process via a zero-delay event so it starts inside the
        # event loop, after the current callback finishes.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def __repr__(self):
        return f"<Process {self.name} at t={self.sim.now:.3f}>"

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`SimInterrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on.
        """
        if self.triggered:
            raise SimError(f"cannot interrupt finished process {self.name}")
        poke = Event(self.sim)
        poke.callbacks.append(self._do_interrupt)
        self.sim._schedule_trigger(poke, 0.0, False, SimInterrupt(cause))

    def _do_interrupt(self, poke):
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        self._step(poke)

    def _resume(self, event):
        self._waiting_on = None
        self._step(event)

    def _step(self, event):
        try:
            if event._ok:
                yielded = self.generator.send(event._value)
            else:
                yielded = self.generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks or isinstance(exc, SimError):
                self.fail(exc)
                return
            raise
        if not isinstance(yielded, Event):
            raise SimError(
                f"process {self.name} yielded {yielded!r}; processes may only "
                "yield Event objects (timeout, request, process, ...)"
            )
        self._waiting_on = yielded
        if yielded._processed:
            # The event fired before we yielded on it; resume via a probe
            # carrying its outcome (the original callbacks already ran).
            probe = Event(self.sim)
            probe.callbacks.append(self._resume)
            self.sim._schedule_trigger(probe, 0.0, yielded._ok, yielded._value)
            self._waiting_on = probe
        else:
            yielded.callbacks.append(self._resume)


class Simulator:
    """Virtual clock plus a deterministic event heap.

    Heap entries are ordered by ``(time, sequence)`` where the sequence number
    is assigned at scheduling time, so same-time events are processed in
    schedule order and runs are fully reproducible.
    """

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._sequence = 0
        self._processed = 0

    # -- scheduling --------------------------------------------------------

    def _schedule_event(self, event, delay=0.0):
        """Queue an already-triggered event for callback processing."""
        self._sequence += 1
        heapq.heappush(
            self._heap, (self.now + delay, self._sequence, event, None)
        )

    def _schedule_trigger(self, event, delay, ok, value):
        """Queue a pending event to be triggered-and-processed at now+delay."""
        self._sequence += 1
        heapq.heappush(
            self._heap, (self.now + delay, self._sequence, event, (ok, value))
        )

    def schedule(self, delay, callback, value=None):
        """Run ``callback(value)`` after ``delay`` virtual milliseconds."""
        event = Event(self)
        event.callbacks.append(lambda ev: callback(ev._value))
        self._schedule_trigger(event, delay, True, value)
        return event

    # -- event constructors -------------------------------------------------

    def event(self):
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event firing ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Spawn ``generator`` as a new process, returning it."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- running ------------------------------------------------------------

    def run(self, until=None):
        """Process events until the heap is empty or ``until`` is reached.

        Returns the simulation time at exit.  ``until`` is an absolute
        virtual time; events scheduled exactly at ``until`` are *not*
        processed (the clock stops at ``until``).
        """
        heap = self._heap
        while heap:
            when = heap[0][0]
            if until is not None and when >= until:
                self.now = until
                return self.now
            _when, _seq, event, payload = heapq.heappop(heap)
            self.now = when
            self._processed += 1
            if payload is not None:
                event._ok, event._value = payload
            event._processed = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        return self.now

    def run_process(self, generator, name=None):
        """Spawn ``generator``, run to completion, and return its value.

        Convenience for tests and examples; raises if the process failed or
        the simulation starved before the process finished.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimError(f"simulation starved; {proc.name} never finished")
        if not proc.ok:
            raise proc.value
        return proc.value

    @property
    def events_processed(self):
        """Number of events processed so far (for diagnostics)."""
        return self._processed
