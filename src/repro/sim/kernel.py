"""The event loop and process machinery.

:class:`Simulator` owns the virtual clock and the event heap.
:class:`Process` drives a generator: every value the generator yields must be
an :class:`~repro.sim.events.Event`; the process suspends until the event is
processed and is resumed with the event's value (or has the event's exception
thrown into it).  A process is itself an event that triggers when the
generator returns.

The hot loop is engineered around two observations from profiling the
paper's benchmarks (tens of millions of resumes per figure):

- a process start or a yield on an already-fired event used to cost a whole
  bootstrap/probe ``Event``; both now go through *direct resume* heap
  entries (``KIND_RESUME``) that re-enter the generator straight off the
  heap, preserving the exact (time, sequence) ordering the probe had;
- heap entries are flat ``(when, seq, kind, obj, ok, value)`` tuples, so
  scheduling allocates one tuple and nothing else.

Sequence numbers are consumed exactly as in the event-based formulation
(one per schedule), so same-time tie-breaking — and therefore every
simulated result — is unchanged.
"""

import gc
from heapq import heappop, heappush
from inspect import isgenerator

from repro.sim.errors import SimError, SimInterrupt
from repro.sim.events import (
    KIND_CALL, KIND_PROCESS, KIND_RESUME, KIND_TRIGGER,
    PENDING, AllOf, AnyOf, Event, Timeout,
)

#: Optional tracer hook (set by :func:`repro.obs.enable`).  When ``None``
#: (the default) the kernel pays one module-global load and a ``None``
#: check per resume — nothing else.  When set, the kernel publishes the
#: currently executing :class:`Process` on ``TRACE.current`` so ambient
#: span context can follow the flow of control, and new processes inherit
#: their spawner's span context (``ctx``).  The hook never touches the
#: clock, the heap, or sequence numbers: tracing is charge-preserving.
TRACE = None


class Process(Event):
    """A running coroutine, also waitable as an event (fires at completion)."""

    __slots__ = ("generator", "name", "_waiting_on", "_pending_resume",
                 "_resume_cb", "ctx")

    def __init__(self, sim, generator, name=None):
        if not isgenerator(generator):
            raise SimError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        # Ambient span context: spawned processes (parallel broadcasts,
        # fence fan-outs, ...) continue their spawner's active span.
        if TRACE is None:
            self.ctx = None
        else:
            parent = TRACE.current
            self.ctx = parent.ctx if parent is not None else None
        # One bound method for the process's lifetime instead of one
        # allocation per yield.
        self._resume_cb = self._resume
        # Kick off the process via a zero-delay direct resume so it starts
        # inside the event loop, after the current callback finishes.
        sim._sequence += 1
        entry = (sim.now, sim._sequence, KIND_RESUME, self, True, None)
        self._pending_resume = entry
        heappush(sim._heap, entry)

    def __repr__(self):
        return f"<Process {self.name} at t={self.sim.now:.3f}>"

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`SimInterrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on.
        """
        if self._value is not PENDING:
            raise SimError(f"cannot interrupt finished process {self.name}")
        sim = self.sim
        sim._sequence += 1
        heappush(sim._heap,
                 (sim.now, sim._sequence, KIND_CALL, self._do_interrupt,
                  None, SimInterrupt(cause)))

    def _do_interrupt(self, exc):
        if self._value is not PENDING:
            return  # finished before the interrupt was delivered
        # Cancel a scheduled direct resume (waiting on an already-fired
        # event); the stale heap entry is skipped when it pops.
        self._pending_resume = None
        target = self._waiting_on
        if target is not None:
            callbacks = target.callbacks
            if callbacks is self._resume_cb:
                target.callbacks = None
            elif type(callbacks) is list:
                try:
                    callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
            self._waiting_on = None
        self._step(False, exc)

    def _resume(self, event):
        self._waiting_on = None
        self._step(event._ok, event._value)

    def _step(self, ok, value):
        # Always published (one attribute store per resume): service code
        # uses the executing process as a client identity — e.g. the async
        # commit path's dependency tracker attributes reads and writes to
        # the op chain that issued them (RPC handlers run inline in their
        # caller's process, so one op is one process).
        self.sim.current = self
        if TRACE is not None:
            TRACE.current = self
        generator = self.generator
        try:
            if ok:
                yielded = generator.send(value)
            else:
                yielded = generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks or isinstance(exc, SimError):
                self.fail(exc)
                return
            raise
        if isinstance(yielded, Event):
            if not yielded._processed:
                self._waiting_on = yielded
                callbacks = yielded.callbacks
                if callbacks is None:
                    yielded.callbacks = self._resume_cb
                elif type(callbacks) is list:
                    callbacks.append(self._resume_cb)
                else:
                    yielded.callbacks = [callbacks, self._resume_cb]
            else:
                # The event fired before we yielded on it; resume directly
                # off the heap with its outcome (the original callbacks
                # already ran).
                sim = self.sim
                sim._sequence += 1
                entry = (sim.now, sim._sequence, KIND_RESUME, self,
                         yielded._ok, yielded._value)
                self._pending_resume = entry
                heappush(sim._heap, entry)
            return
        # Yielding a non-Event is a bug in the process body; fail the
        # process like any other process error so the loop keeps running
        # and waiters see the failure.
        generator.close()
        self.fail(SimError(
            f"process {self.name} yielded {yielded!r}; processes may only "
            "yield Event objects (timeout, request, process, ...)"
        ))


class Simulator:
    """Virtual clock plus a deterministic event heap.

    Heap entries are ordered by ``(time, sequence)`` where the sequence number
    is assigned at scheduling time, so same-time events are processed in
    schedule order and runs are fully reproducible.
    """

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._sequence = 0
        self._processed = 0
        #: the currently executing :class:`Process` (maintained by
        #: ``Process._step``); None before the first resume.
        self.current = None

    # -- scheduling --------------------------------------------------------

    def _schedule_event(self, event, delay=0.0):
        """Queue an already-triggered event for callback processing."""
        self._sequence += 1
        heappush(self._heap,
                 (self.now + delay, self._sequence, KIND_PROCESS, event,
                  None, None))

    def _schedule_trigger(self, event, delay, ok, value):
        """Queue a pending event to be triggered-and-processed at now+delay."""
        self._sequence += 1
        heappush(self._heap,
                 (self.now + delay, self._sequence, KIND_TRIGGER, event,
                  ok, value))

    def schedule(self, delay, callback, value=None):
        """Run ``callback(value)`` after ``delay`` virtual milliseconds."""
        self._sequence += 1
        heappush(self._heap,
                 (self.now + delay, self._sequence, KIND_CALL, callback,
                  None, value))

    # -- event constructors -------------------------------------------------

    def event(self):
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event firing ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Spawn ``generator`` as a new process, returning it."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- running ------------------------------------------------------------

    def run(self, until=None):
        """Process events until the heap is empty or ``until`` is reached.

        Returns the simulation time at exit.  ``until`` is an absolute
        virtual time; events scheduled exactly at ``until`` are *not*
        processed (the clock stops at ``until``).
        """
        heap = self._heap
        pop = heappop
        processed = self._processed
        # The loop allocates millions of short-lived tuples, events and
        # generator frames; letting the cyclic collector scan them mid-run
        # costs ~20% of wall time for zero reclaim (the object graph is
        # torn down by refcounting as entries pop).  Cycles that do form
        # are collected once the loop exits.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                if until is not None and heap[0][0] >= until:
                    self.now = until
                    return until
                entry = pop(heap)
                when, _seq, kind, obj, ok, value = entry
                self.now = when
                processed += 1
                if kind == KIND_TRIGGER:
                    obj._ok = ok
                    obj._value = value
                    obj._processed = True
                    callbacks = obj.callbacks
                    if callbacks is not None:
                        obj.callbacks = None
                        if type(callbacks) is list:
                            for callback in callbacks:
                                callback(obj)
                        else:
                            callbacks(obj)
                elif kind == KIND_PROCESS:
                    obj._processed = True
                    callbacks = obj.callbacks
                    if callbacks is not None:
                        obj.callbacks = None
                        if type(callbacks) is list:
                            for callback in callbacks:
                                callback(obj)
                        else:
                            callbacks(obj)
                elif kind == KIND_RESUME:
                    # Direct generator resume; stale entries (cancelled by
                    # an interrupt) still count as processed, like the
                    # empty probe events they replace.
                    if obj._pending_resume is entry:
                        obj._pending_resume = None
                        obj._step(ok, value)
                else:  # KIND_CALL
                    obj(value)
            return self.now
        finally:
            self._processed = processed
            if TRACE is not None:
                # Top-level code between runs must not attach spans to the
                # last process that happened to execute.
                TRACE.current = None
            if gc_was_enabled:
                gc.enable()

    def run_process(self, generator, name=None):
        """Spawn ``generator``, run to completion, and return its value.

        Convenience for tests and examples; raises if the process failed or
        the simulation starved before the process finished.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimError(f"simulation starved; {proc.name} never finished")
        if not proc.ok:
            raise proc.value
        return proc.value

    @property
    def events_processed(self):
        """Number of events processed so far (for diagnostics)."""
        return self._processed
