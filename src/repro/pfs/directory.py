"""Extendible-hashing directories, as GPFS uses for scalable directories.

Entries (name -> inode number) live in fixed-capacity *blocks* addressed by
the low bits of a name hash.  When a block overflows it splits, possibly
doubling the bucket table (increasing the *global depth*).  The structure
matters to the reproduction twice over:

- lookups and inserts touch exactly one block — the caching granule clients
  and servers work with (block fetch costs, false sharing);
- the global depth grows with directory size, and the paper's "create time
  rises steadily past 512 entries" behaviour is charged per create in
  proportion to the depth beyond the in-cache regime (see
  :attr:`repro.pfs.config.PfsConfig.dir_depth_cost_ms`).
"""

import zlib


def name_hash(name):
    """Stable 32-bit hash of an entry name."""
    return zlib.crc32(name.encode())


class DirBlock:
    """One bucket of an extendible-hash directory."""

    __slots__ = ("block_id", "local_depth", "entries")

    def __init__(self, block_id, local_depth):
        self.block_id = block_id
        self.local_depth = local_depth
        self.entries = {}

    def __len__(self):
        return len(self.entries)


class ExtendibleDir:
    """An extendible-hash table of directory entries."""

    def __init__(self, block_capacity=64, max_depth=24):
        if block_capacity < 2:
            raise ValueError("block capacity must be >= 2")
        self.block_capacity = block_capacity
        self.max_depth = max_depth
        self.global_depth = 0
        self._next_block_id = 1
        root = DirBlock(0, 0)
        self._buckets = [root]     # 2**global_depth slots -> DirBlock
        self.version = 0           # bumped on every mutation
        self.splits = 0

    # -- structure queries -------------------------------------------------------

    def __len__(self):
        return sum(len(b) for b in self.blocks())

    def __contains__(self, name):
        return name in self._bucket_for(name).entries

    def blocks(self):
        """The distinct blocks, in bucket order."""
        seen = {}
        for block in self._buckets:
            seen.setdefault(block.block_id, block)
        return list(seen.values())

    @property
    def n_blocks(self):
        return len({b.block_id for b in self._buckets})

    def block_of(self, name):
        """The block id the entry for ``name`` lives in (its cache granule)."""
        return self._bucket_for(name).block_id

    def _bucket_for(self, name):
        index = name_hash(name) & ((1 << self.global_depth) - 1)
        return self._buckets[index]

    # -- operations ---------------------------------------------------------------

    def lookup(self, name):
        """The inode number for ``name``, or None."""
        return self._bucket_for(name).entries.get(name)

    def insert(self, name, ino):
        """Add an entry; returns the number of splits it caused.

        Raises KeyError if the name already exists (callers translate this
        into EEXIST).
        """
        bucket = self._bucket_for(name)
        if name in bucket.entries:
            raise KeyError(name)
        splits = 0
        while len(bucket.entries) >= self.block_capacity:
            if bucket.local_depth >= self.max_depth:
                break  # degenerate: allow overfull block rather than loop
            self._split(bucket)
            splits += 1
            bucket = self._bucket_for(name)
        bucket.entries[name] = ino
        self.version += 1
        self.splits += splits
        return splits

    def remove(self, name):
        """Delete an entry; returns True if it existed."""
        bucket = self._bucket_for(name)
        if name not in bucket.entries:
            return False
        del bucket.entries[name]
        self.version += 1
        return True

    def entries(self):
        """All (name, ino) pairs in deterministic (hash-bucket) order."""
        out = []
        for block in self.blocks():
            out.extend(sorted(block.entries.items()))
        return out

    def names(self):
        return [name for name, _ino in self.entries()]

    # -- splitting -------------------------------------------------------------------

    def _split(self, bucket):
        if bucket.local_depth == self.global_depth:
            # Double the bucket table.
            self._buckets = self._buckets + list(self._buckets)
            self.global_depth += 1
        new_depth = bucket.local_depth + 1
        sibling = DirBlock(self._next_block_id, new_depth)
        self._next_block_id += 1
        bucket.local_depth = new_depth
        # Entries whose new depth bit is 1 move to the sibling.
        moved_bit = 1 << (new_depth - 1)
        stay, move = {}, {}
        for name, ino in bucket.entries.items():
            if name_hash(name) & moved_bit:
                move[name] = ino
            else:
                stay[name] = ino
        bucket.entries = stay
        sibling.entries = move
        # Re-point table slots: among slots referencing `bucket`, those with
        # the moved bit set now reference the sibling.
        for index, blk in enumerate(self._buckets):
            if blk is bucket and index & moved_bit:
                self._buckets[index] = sibling
