"""POSIX-style filesystem errors.

Errors carry an errno name so differential tests can compare failure modes
between the bare parallel FS and COFS exactly.
"""


class FsError(OSError):
    """A filesystem operation failed with a POSIX errno."""

    def __init__(self, code, message):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message

    @classmethod
    def enoent(cls, path):
        return cls("ENOENT", f"no such file or directory: {path}")

    @classmethod
    def eexist(cls, path):
        return cls("EEXIST", f"file exists: {path}")

    @classmethod
    def enotdir(cls, path):
        return cls("ENOTDIR", f"not a directory: {path}")

    @classmethod
    def eisdir(cls, path):
        return cls("EISDIR", f"is a directory: {path}")

    @classmethod
    def enotempty(cls, path):
        return cls("ENOTEMPTY", f"directory not empty: {path}")

    @classmethod
    def ebadf(cls, handle):
        return cls("EBADF", f"bad file handle: {handle}")

    @classmethod
    def einval(cls, message):
        return cls("EINVAL", message)
