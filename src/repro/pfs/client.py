"""The per-node parallel-FS client: the VFS operations.

This is where the paper's metadata behaviours live.  Key structure:

- **resolution** walks path components under per-directory read tokens with
  a bounded directory-block cache;
- **creates/unlinks** are performed *by the client* under the directory's
  exclusive token — contended creates serialize on token handoffs whose cost
  (revoke round trips, dirty-block write-back, log forces) produces the
  20→30 ms collapse of Figs. 2 and 4;
- **attribute operations** pin per-inode tokens cached in a bounded LRU
  (1024 entries): below the cap everything is node-local (Fig. 1's fast
  regime), above it each access pays token + NSD round trips, and tokens
  left dirty at a creator node make other nodes' first accesses pay
  revocation + flush (Fig. 5's expensive phase, converging once the
  creator's cache cap is exceeded);
- **token ordering** — operations take directory tokens before attribute
  tokens and never wait on a directory token while pinning an attribute
  token, which rules out revocation deadlocks.

Data operations delegate to :class:`~repro.pfs.pagecache.DataPath`.
"""

import itertools

from repro.pfs.cache import LruDict
from repro.pfs.errors import FsError
from repro.sim.events import Timeout
from repro.pfs.pagecache import DataPath
from repro.pfs.tokens import RO, XW
from repro.pfs.tokenclient import TokenClient
from repro.pfs.types import (
    DIRECTORY, FILE, SYMLINK, OpenFlags, components, split,
)
from repro.pfs.vfs import FileSystemApi
from repro.pfs.wal import ClientWal

_MAX_SYMLINK_DEPTH = 8


class _OpenFile:
    __slots__ = ("fh", "ino", "flags", "wrote")

    def __init__(self, fh, ino, flags):
        self.fh = fh
        self.ino = ino
        self.flags = flags
        self.wrote = False


class PfsClient(FileSystemApi):
    """One node's mount of the parallel file system."""

    def __init__(self, pfs, machine, uid=0, gid=0):
        self.pfs = pfs
        self.state = pfs.state
        self.config = pfs.config
        self.machine = machine
        self.sim = machine.sim
        self.uid = uid
        self.gid = gid
        self.tokens = TokenClient(machine, pfs.token_machine, pfs.config)
        machine.register("tokens", self.tokens)
        self.data = DataPath(self)
        machine.register("ranges", self.data)
        self.wal = ClientWal(machine, pfs.nsd_for_log(machine.name), pfs.config)
        self._dirblocks = LruDict(self.config.dirblock_cache_blocks)
        self._dirty_dirblocks = {}  # dir ino -> set of block ids
        self._prefix_cache = {}     # parent-path tuple -> (ino, walk steps)
        self._prefix_by_dir = {}    # dir ino -> prefix keys reading from it
        self._dentries = {}         # dir ino -> {name: (child, block, is_symlink)}
        self._attr_fetches = {}     # inode block id -> in-flight event
        self._handles = {}
        self._fh_counter = itertools.count(1)
        pfs.token_server.attach_client(machine.name, machine)
        pfs.range_server.attach_client(machine.name, machine)

    @property
    def name(self):
        return self.machine.name

    def _now(self):
        return self.sim.now

    def _op_cost(self):
        return self.machine.compute(self.config.client_op_cpu_ms)

    # ------------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------------

    def _inode(self, ino, path="?"):
        inode = self.state.inodes.get(ino)
        if inode is None:
            raise FsError.enoent(path)
        return inode

    #: bound on cached resolution prefixes; overflow clears the cache.
    _PREFIX_CACHE_MAX = 256

    def _resolve(self, path, follow=True, _depth=0):
        """Coroutine: the inode number at ``path`` (symlinks followed).

        Repeated walks of the same parent directory take the *prefix cache*
        fast path: when every directory token and directory block along the
        walked prefix is still cached (and quiescent), the per-component
        cache-hit charges collapse into one scheduled sleep of the same
        total virtual duration, with the directory tokens pinned across it.
        The cache is invalidated whenever a walked directory's entries
        change or its token is dropped, so a hit can never observe state
        the step-by-step walk would not.
        """
        if _depth > _MAX_SYMLINK_DEPTH:
            raise FsError.einval(f"too many levels of symbolic links: {path}")
        parts = components(path)
        n = len(parts)
        ino = self.state.root_ino
        start = 0
        steps = None
        prefix_key = None
        if n > 1:
            prefix_key = parts[:-1]
            hit = self._prefix_cache.get(prefix_key)
            if hit is not None:
                prepared = self._prefix_try(hit)
                if prepared is not None:
                    entries, when = prepared
                    yield Timeout(self.sim, when, absolute=True)
                    for entry in entries:
                        entry.unpin()
                    ino = hit[0]
                    start = n - 1
                else:
                    self._prefix_cache.pop(prefix_key, None)
            if start == 0:
                steps = []
        for index in range(start, n):
            name = parts[index]
            inode = self._inode(ino, path)
            if not inode.is_dir:
                raise FsError.enotdir(path)
            if steps is not None and index == n - 1:
                # The whole parent prefix resolved without symlinks:
                # remember it before the (possibly failing) leaf lookup.
                self._remember_prefix(prefix_key, ino, steps)
            child, block = yield from self._lookup_step(ino, name)
            if child is None:
                raise FsError.enoent(path)
            child_inode = self._inode(child, path)
            last = index == n - 1
            if child_inode.is_symlink and (follow or not last):
                rest = "/".join(parts[index + 1:])
                target = child_inode.symlink_target
                if not target.startswith("/"):
                    base = "/" + "/".join(parts[:index])
                    target = f"{base}/{target}"
                if rest:
                    target = f"{target}/{rest}"
                result = yield from self._resolve(
                    target, follow=follow, _depth=_depth + 1
                )
                return result
            if steps is not None and not last:
                steps.append((ino, block))
            ino = child
        return ino

    def _prefix_try(self, hit):
        """Validate and pin a cached prefix walk (plain function, no yield).

        Returns (pinned token entries, absolute wake-up time) when every
        walked directory token is still cached and quiescent and every
        walked block is still resident — or None when the cached state no
        longer applies (token lost, block evicted, CPU contended) and the
        step-by-step walk must run instead.  The wake-up time is the same
        sequence of dirblock-hit charges the steps would pay, accumulated
        with identical float rounding.
        """
        cpu = self.machine.cpu
        if len(cpu.users) >= cpu.capacity or cpu.queue:
            return None
        tokens = self.tokens
        dirblocks = self._dirblocks
        data = dirblocks._data
        entries = []
        for dir_ino, block in hit[1]:
            entry = tokens.get_covering(("dir", dir_ino), RO)
            if entry is None:
                return None
            key = (dir_ino, block)
            if key not in data:
                dirblocks.misses += 1
                return None
            dirblocks.hits += 1
            data.move_to_end(key)
            entries.append(entry)
        when = self.sim.now
        hit_ms = self._DIRBLOCK_HIT_MS
        for entry in entries:
            entry.pins += 1
            when += hit_ms
        return entries, when

    def _remember_prefix(self, prefix_key, parent_ino, steps):
        if len(self._prefix_cache) >= self._PREFIX_CACHE_MAX:
            self._prefix_cache.clear()
            self._prefix_by_dir.clear()
        self._prefix_cache[prefix_key] = (parent_ino, steps)
        by_dir = self._prefix_by_dir
        for dir_ino, _block in steps:
            bucket = by_dir.get(dir_ino)
            if bucket is None:
                bucket = by_dir[dir_ino] = set()
            bucket.add(prefix_key)

    def _invalidate_prefixes(self, dir_ino):
        """Drop cached resolution state reading entries from ``dir_ino``."""
        self._dentries.pop(dir_ino, None)
        keys = self._prefix_by_dir.pop(dir_ino, None)
        if keys:
            cache = self._prefix_cache
            for key in keys:
                cache.pop(key, None)

    def _resolve_parent(self, path, charge_op=False):
        """Coroutine: (parent_ino, leaf_name) for ``path``.

        With ``charge_op``, the per-op CPU cost is charged as part of the
        resolution (collapsing into one wake-up when fully cached).
        """
        parent_path, name = split(path)
        if not name:
            raise FsError.einval(f"path has no leaf component: {path}")
        if charge_op:
            yield from self._op_cost()
        parent_ino = yield from self._resolve(parent_path)
        parent = self._inode(parent_ino, parent_path)
        if not parent.is_dir:
            raise FsError.enotdir(parent_path)
        return parent_ino, name

    def _lookup(self, dir_ino, name):
        """Coroutine: child ino of ``name`` in ``dir_ino`` (None if absent)."""
        child, _block = yield from self._lookup_step(dir_ino, name)
        return child

    def _lookup_step(self, dir_ino, name):
        """Coroutine: (child ino or None, block id) for one walk step.

        A cached dentry skips the directory hashing and block lookup while
        performing the exact same token hold, block-cache touch and
        virtual-time charge at the exact same instants as the full step —
        so timing (and thus every simulated result) is unchanged.
        """
        dir_inode = self._inode(dir_ino)
        dmap = self._dentries.get(dir_ino)
        cached = dmap.get(name) if dmap is not None else None
        if cached is not None:
            entry = self.tokens.hold_cached(("dir", dir_ino), RO)
            if entry is not None:
                child = cached[0]
                block = cached[1]
                dirblocks = self._dirblocks
                data = dirblocks._data
                key = (dir_ino, block)
                if key in data:
                    dirblocks.hits += 1
                    data.move_to_end(key)
                    try:
                        yield from self.machine.compute(self._DIRBLOCK_HIT_MS)
                    finally:
                        entry.unpin()
                    return child, block
                dirblocks.misses += 1
                entry.unpin()
        entry = self.tokens.hold_cached(("dir", dir_ino), RO)
        if entry is None:
            entry = yield from self._hold_dir(dir_ino, RO)
        try:
            block = dir_inode.dir.block_of(name)
            yield from self._ensure_dirblock(dir_ino, block)
            child = dir_inode.dir.lookup(name)
            if child is not None:
                cinode = self.state.inodes.get(child)
                if cinode is not None:
                    dmap = self._dentries.get(dir_ino)
                    if dmap is None:
                        dmap = self._dentries[dir_ino] = {}
                    elif len(dmap) > 4096:
                        dmap.clear()
                    dmap[name] = (child, block, cinode.kind == SYMLINK)
            return child, block
        finally:
            entry.unpin()

    # ------------------------------------------------------------------------
    # directory tokens and blocks
    # ------------------------------------------------------------------------

    def _on_dir_drop(self, entry):
        """Token-drop hook for directory tokens (entry.key = ("dir", ino))."""
        self._drop_dir_state(entry.key[1])

    def _hold_dir(self, dir_ino, mode):
        entry = yield from self.tokens.hold(
            ("dir", dir_ino), mode, on_drop=self._on_dir_drop
        )
        return entry

    def _drop_dir_state(self, dir_ino):
        for key in self._dirblocks.keys():
            if key[0] == dir_ino:
                self._dirblocks.pop(key)
        self._dirty_dirblocks.pop(dir_ino, None)
        self._invalidate_prefixes(dir_ino)

    #: virtual cost of touching an already-cached directory block.
    _DIRBLOCK_HIT_MS = 0.002

    def _ensure_dirblock(self, dir_ino, block):
        if self._dirblocks.get((dir_ino, block)) is not None:
            return self.machine.compute(self._DIRBLOCK_HIT_MS)
        return self._fetch_dirblock(dir_ino, block)

    def _fetch_dirblock(self, dir_ino, block):
        """Coroutine: pull a missing directory block from its NSD."""
        nsd = self.pfs.nsd_for_dirblock(dir_ino, block)
        yield from self.machine.call(
            nsd, "nsd", "fetch_dir_block", args=(dir_ino, block),
            req_size=128, resp_size=self.config.meta_block_bytes,
        )
        self._dirblocks.put((dir_ino, block), True)

    def _touch_dirblock_dirty(self, dir_ino, block):
        self._dirblocks.put((dir_ino, block), True)
        self._dirty_dirblocks.setdefault(dir_ino, set()).add(block)

    def _dir_flush_cb(self, dir_ino):
        """Flush callback attached to a dirty directory token."""

        def flush():
            dirty = self._dirty_dirblocks.pop(dir_ino, None)
            if dirty:
                # One block is written back synchronously with the token
                # handoff; the rest ride the journal and later write-behind.
                block = sorted(dirty)[0]
                nsd = self.pfs.nsd_for_dirblock(dir_ino, block)
                yield from self.machine.call(
                    nsd, "nsd", "put_dir_block", args=(dir_ino, block),
                    req_size=self.config.meta_block_bytes, resp_size=128,
                )
            yield from self.wal.force()

        return flush

    def _mutate_dir_cost(self, dir_inode, block, splits):
        """CPU + structural costs of one directory mutation (yield from)."""
        cfg = self.config
        cost = cfg.dir_insert_cpu_ms
        depth_over = min(
            max(0, dir_inode.dir.global_depth - cfg.dir_depth_free),
            cfg.dir_depth_cap_levels,
        )
        cost += cfg.dir_depth_cost_ms * depth_over
        cost += splits * (cfg.dir_insert_cpu_ms * 2)
        return self.machine.compute(cost)

    # ------------------------------------------------------------------------
    # attribute tokens
    # ------------------------------------------------------------------------

    def _on_attr_drop(self, entry):
        """Token-drop hook for attribute tokens (entry.key = ("attr", ino))."""
        self.data.drop_ino(entry.key[1])

    def _hold_attr(self, ino, mode):
        entry = self.tokens.hold_cached(("attr", ino), mode)
        if entry is None:
            entry = yield from self.tokens.hold(
                ("attr", ino), mode, on_drop=self._on_attr_drop
            )
        if entry.payload is None:
            yield from self._fetch_attrs(ino, entry)
        return entry

    def _fetch_attrs(self, ino, entry):
        """Coroutine: load attrs for ``ino`` (fetches coalesce per block)."""
        block = self.state.inodes.block_of(ino)
        inflight = self._attr_fetches.get(block)
        if inflight is not None:
            attrs = yield inflight
        else:
            gate = self.sim.event()
            self._attr_fetches[block] = gate
            nsd = self.pfs.nsd_for_inode_block(block)
            attrs = {}
            try:
                attrs = yield from self.machine.call(
                    nsd, "nsd", "fetch_attr_block", args=(block,),
                    req_size=128, resp_size=self.config.meta_block_bytes,
                )
            finally:
                del self._attr_fetches[block]
                gate.succeed(attrs)
        got = attrs.get(ino)
        if got is None:
            inode = self.state.inodes.get(ino)
            if inode is None:
                raise FsError.enoent(f"inode {ino}")
            got = inode.attr()
        entry.payload = got

    def _attr_flush_cb(self, ino, entry):
        """Flush callback for dirty attributes: apply + log + write-back."""

        def flush():
            inode = self.state.inodes.get(ino)
            if inode is not None and entry.payload is not None:
                attr = entry.payload
                inode.mode = attr.mode
                inode.uid = attr.uid
                inode.gid = attr.gid
                inode.atime = attr.atime
                inode.mtime = attr.mtime
                inode.ctime = attr.ctime
                if inode.is_file:
                    inode.size = max(inode.size, attr.size)
            # Attribute flushes on revocation are individually synchronous
            # log forces (they do not ride the node's group-commit batching):
            # this is the serial cost that builds the revocation queue at a
            # creator node in the paper's Figs. 2 and 5.
            log_nsd = self.pfs.nsd_for_log(self.machine.name)
            yield from self.machine.call(
                log_nsd, "nsd", "log_force", args=(self.machine.name, 1),
                req_size=512, resp_size=128,
            )
            nsd = self.pfs.nsd_for_inode(ino)
            yield from self.machine.call(
                nsd, "nsd", "put_attr", args=(ino,),
                req_size=512, resp_size=128,
            )

        return flush

    # ------------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------------

    def mkdir(self, path, mode=0o755):
        parent_ino, name = yield from self._resolve_parent(path, charge_op=True)
        yield from self._create_object(parent_ino, name, DIRECTORY, mode, path)

    def create(self, path, mode=0o644):
        parent_ino, name = yield from self._resolve_parent(path, charge_op=True)
        ino = yield from self._create_object(parent_ino, name, FILE, mode, path)
        return self._new_handle(ino, OpenFlags.WRONLY | OpenFlags.CREAT)

    def symlink(self, target, path):
        parent_ino, name = yield from self._resolve_parent(path, charge_op=True)
        ino = yield from self._create_object(parent_ino, name, SYMLINK, 0o777, path)
        self.state.inodes.get(ino).symlink_target = target

    def _create_object(self, parent_ino, name, kind, mode, path):
        """Coroutine: the shared create path for files/dirs/symlinks.

        The directory token is pinned only for the insert itself; the log
        force and the new inode's token acquisition happen after the pin is
        released, so under contention they overlap the next node's token
        handoff (as GPFS allows — recovery ordering comes from the journal).
        """
        parent = self._inode(parent_ino, path)
        entry = yield from self._hold_dir(parent_ino, XW)
        try:
            block = parent.dir.block_of(name)
            yield from self._ensure_dirblock(parent_ino, block)
            if parent.dir.lookup(name) is not None:
                raise FsError.eexist(path)
            inode = self.state.inodes.allocate(
                kind, mode, self.uid, self.gid, self._now(), self.name
            )
            splits = parent.dir.insert(name, inode.ino)
            self._invalidate_prefixes(parent_ino)
            if kind == DIRECTORY:
                self.state.parents[inode.ino] = parent_ino
                parent.nlink += 1
            yield from self._mutate_dir_cost(parent, block, splits)
            self._touch_dirblock_dirty(parent_ino, parent.dir.block_of(name))
            parent.mtime = parent.ctime = self._now()
            entry.mark_dirty(self._dir_flush_cb(parent_ino))
        finally:
            entry.unpin()
        # The creator caches the new inode's attributes exclusively.  The
        # inode came from this node's allocation segment, so the token is
        # segment-delegated: no server round trip.
        drop = lambda _e, ino=inode.ino: self.data.drop_ino(ino)  # noqa: E731
        attr_entry = yield from self.tokens.grant_local(
            ("attr", inode.ino), XW, on_drop=drop
        )
        attr_entry.payload = inode.attr()
        attr_entry.mark_dirty(self._attr_flush_cb(inode.ino, attr_entry))
        attr_entry.unpin()
        yield from self.wal.force()
        return inode.ino

    def unlink(self, path):
        parent_ino, name = yield from self._resolve_parent(path, charge_op=True)
        parent = self._inode(parent_ino, path)
        entry = yield from self._hold_dir(parent_ino, XW)
        try:
            block = parent.dir.block_of(name)
            yield from self._ensure_dirblock(parent_ino, block)
            ino = parent.dir.lookup(name)
            if ino is None:
                raise FsError.enoent(path)
            victim = self._inode(ino, path)
            if victim.is_dir:
                raise FsError.eisdir(path)
            parent.dir.remove(name)
            self._invalidate_prefixes(parent_ino)
            yield from self._mutate_dir_cost(parent, block, 0)
            self._touch_dirblock_dirty(parent_ino, block)
            parent.mtime = parent.ctime = self._now()
            entry.mark_dirty(self._dir_flush_cb(parent_ino))
            victim.nlink -= 1
            victim.ctime = self._now()
            if victim.nlink <= 0:
                yield from self._destroy_inode(ino)
            yield from self.wal.force()
        finally:
            entry.unpin()

    def rmdir(self, path):
        parent_ino, name = yield from self._resolve_parent(path, charge_op=True)
        parent = self._inode(parent_ino, path)
        entry = yield from self._hold_dir(parent_ino, XW)
        try:
            block = parent.dir.block_of(name)
            yield from self._ensure_dirblock(parent_ino, block)
            ino = parent.dir.lookup(name)
            if ino is None:
                raise FsError.enoent(path)
            victim = self._inode(ino, path)
            if not victim.is_dir:
                raise FsError.enotdir(path)
            if len(victim.dir) > 0:
                raise FsError.enotempty(path)
            parent.dir.remove(name)
            self._invalidate_prefixes(parent_ino)
            self._invalidate_prefixes(ino)
            yield from self._mutate_dir_cost(parent, block, 0)
            self._touch_dirblock_dirty(parent_ino, block)
            parent.nlink -= 1
            parent.mtime = parent.ctime = self._now()
            entry.mark_dirty(self._dir_flush_cb(parent_ino))
            self.state.parents.pop(ino, None)
            yield from self._destroy_inode(ino)
            yield from self.wal.force()
        finally:
            entry.unpin()

    def _destroy_inode(self, ino):
        """Coroutine: strip tokens everywhere and free the inode."""
        yield from self.machine.call(
            self.pfs.token_machine, "tokmgr", "revoke_all",
            args=(self.name, ("attr", ino)),
            req_size=self.config.token_msg_bytes,
            resp_size=self.config.token_msg_bytes,
        )
        self.tokens.drop_local(("attr", ino))
        self.data.drop_ino(ino)
        self.pfs.range_server.forget(ino)
        self.state.inodes.free(ino)

    def rename(self, old, new):
        old_parent, old_name = yield from self._resolve_parent(old, charge_op=True)
        new_parent, new_name = yield from self._resolve_parent(new)
        # Lock directories in ino order to avoid ABBA revocation deadlocks.
        order = sorted({old_parent, new_parent})
        held = []
        try:
            for dir_ino in order:
                entry = yield from self._hold_dir(dir_ino, XW)
                held.append((dir_ino, entry))
            yield from self._rename_locked(
                old, new, old_parent, old_name, new_parent, new_name
            )
            for dir_ino, entry in held:
                entry.mark_dirty(self._dir_flush_cb(dir_ino))
            yield from self.wal.force()
        finally:
            for _ino, entry in held:
                entry.unpin()

    def _rename_locked(self, old, new, old_parent, old_name,
                       new_parent, new_name):
        src_dir = self._inode(old_parent, old)
        dst_dir = self._inode(new_parent, new)
        src_block = src_dir.dir.block_of(old_name)
        yield from self._ensure_dirblock(old_parent, src_block)
        ino = src_dir.dir.lookup(old_name)
        if ino is None:
            raise FsError.enoent(old)
        moving = self._inode(ino, old)
        dst_block = dst_dir.dir.block_of(new_name)
        yield from self._ensure_dirblock(new_parent, dst_block)
        existing = dst_dir.dir.lookup(new_name)
        if existing == ino:
            return
        if existing is not None:
            target = self._inode(existing, new)
            if target.is_dir:
                if not moving.is_dir:
                    raise FsError.eisdir(new)
                if len(target.dir) > 0:
                    raise FsError.enotempty(new)
                dst_dir.dir.remove(new_name)
                self._invalidate_prefixes(new_parent)
                self._invalidate_prefixes(existing)
                dst_dir.nlink -= 1
                self.state.parents.pop(existing, None)
                yield from self._destroy_inode(existing)
            else:
                if moving.is_dir:
                    raise FsError.enotdir(new)
                dst_dir.dir.remove(new_name)
                self._invalidate_prefixes(new_parent)
                target.nlink -= 1
                if target.nlink <= 0:
                    yield from self._destroy_inode(existing)
        src_dir.dir.remove(old_name)
        splits = dst_dir.dir.insert(new_name, ino)
        self._invalidate_prefixes(old_parent)
        self._invalidate_prefixes(new_parent)
        yield from self._mutate_dir_cost(dst_dir, dst_block, splits)
        self._touch_dirblock_dirty(old_parent, src_block)
        self._touch_dirblock_dirty(new_parent, dst_dir.dir.block_of(new_name))
        if moving.is_dir and old_parent != new_parent:
            src_dir.nlink -= 1
            dst_dir.nlink += 1
            self.state.parents[ino] = new_parent
        now = self._now()
        src_dir.mtime = src_dir.ctime = now
        dst_dir.mtime = dst_dir.ctime = now
        moving.ctime = now

    def link(self, src, dst):
        yield from self._op_cost()
        src_ino = yield from self._resolve(src, follow=False)
        source = self._inode(src_ino, src)
        if source.is_dir:
            raise FsError.eisdir(src)
        dst_parent, dst_name = yield from self._resolve_parent(dst)
        parent = self._inode(dst_parent, dst)
        entry = yield from self._hold_dir(dst_parent, XW)
        try:
            block = parent.dir.block_of(dst_name)
            yield from self._ensure_dirblock(dst_parent, block)
            if parent.dir.lookup(dst_name) is not None:
                raise FsError.eexist(dst)
            attr_entry = yield from self._hold_attr(src_ino, XW)
            try:
                splits = parent.dir.insert(dst_name, src_ino)
                self._invalidate_prefixes(dst_parent)
                yield from self._mutate_dir_cost(parent, block, splits)
                self._touch_dirblock_dirty(
                    dst_parent, parent.dir.block_of(dst_name)
                )
                source.nlink += 1
                source.ctime = self._now()
                # In-place update, as in _truncate_ino: keep unflushed
                # attribute changes riding the cached payload.
                attr = attr_entry.payload
                attr.nlink = source.nlink
                attr.ctime = source.ctime
                attr_entry.mark_dirty(self._attr_flush_cb(src_ino, attr_entry))
                parent.mtime = parent.ctime = self._now()
                entry.mark_dirty(self._dir_flush_cb(dst_parent))
            finally:
                attr_entry.unpin()
            yield from self.wal.force()
        finally:
            entry.unpin()

    # ------------------------------------------------------------------------
    # attribute operations
    # ------------------------------------------------------------------------

    def stat(self, path):
        yield from self._op_cost()
        ino = yield from self._resolve(path)
        entry = yield from self._hold_attr(ino, RO)
        try:
            attr = entry.payload
            # Link counts and directory sizes are maintained under the
            # *directory* tokens (they change with namespace operations, and
            # their updates are journaled with them), so refresh them from
            # the authoritative inode rather than the attribute snapshot.
            inode = self.state.inodes.get(ino)
            if inode is not None:
                attr.nlink = inode.nlink
                if inode.is_dir:
                    attr.size = len(inode.dir)
                elif inode.is_file:
                    # Sizes are maintained with shared-write semantics:
                    # concurrent writers each grow their local view and the
                    # metanode merges to the maximum (GPFS does the same).
                    attr.size = max(attr.size, inode.size)
            return attr
        finally:
            entry.unpin()

    def utime(self, path, atime=None, mtime=None):
        yield from self._op_cost()
        ino = yield from self._resolve(path)
        entry = yield from self._hold_attr(ino, XW)
        try:
            now = self._now()
            attr = entry.payload
            attr.atime = now if atime is None else atime
            attr.mtime = now if mtime is None else mtime
            attr.ctime = now
            entry.mark_dirty(self._attr_flush_cb(ino, entry))
        finally:
            entry.unpin()

    def chmod(self, path, mode):
        yield from self._op_cost()
        ino = yield from self._resolve(path)
        entry = yield from self._hold_attr(ino, XW)
        try:
            entry.payload.mode = mode
            entry.payload.ctime = self._now()
            entry.mark_dirty(self._attr_flush_cb(ino, entry))
        finally:
            entry.unpin()

    def chown(self, path, uid, gid):
        yield from self._op_cost()
        ino = yield from self._resolve(path)
        entry = yield from self._hold_attr(ino, XW)
        try:
            entry.payload.uid = uid
            entry.payload.gid = gid
            entry.payload.ctime = self._now()
            entry.mark_dirty(self._attr_flush_cb(ino, entry))
        finally:
            entry.unpin()

    def statfs(self):
        """Aggregate statistics, served by the token-manager node."""
        yield from self._op_cost()
        yield from self.machine.network.transfer(
            self.machine.host, self.pfs.token_machine.host, 256)
        yield from self.machine.network.transfer(
            self.pfs.token_machine.host, self.machine.host, 256)
        inodes = self.state.inodes
        total_bytes = sum(
            inode.size for inode in inodes._inodes.values() if inode.is_file
        )
        return {
            "files": len(inodes),
            "bytes_used": total_bytes,
            "clients": len(self.pfs.clients),
            "servers": len(self.pfs.nsds),
        }

    def readlink(self, path):
        yield from self._op_cost()
        ino = yield from self._resolve(path, follow=False)
        inode = self._inode(ino, path)
        if not inode.is_symlink:
            raise FsError.einval(f"not a symlink: {path}")
        return inode.symlink_target

    def readdir(self, path):
        yield from self._op_cost()
        ino = yield from self._resolve(path)
        inode = self._inode(ino, path)
        if not inode.is_dir:
            raise FsError.enotdir(path)
        entry = yield from self._hold_dir(ino, RO)
        try:
            names = []
            for block in inode.dir.blocks():
                yield from self._ensure_dirblock(ino, block.block_id)
                names.extend(block.entries.keys())
            yield from self.machine.compute(0.0005 * len(names))
            return sorted(names)
        finally:
            entry.unpin()

    # ------------------------------------------------------------------------
    # open files and data
    # ------------------------------------------------------------------------

    def _new_handle(self, ino, flags):
        fh = next(self._fh_counter)
        self._handles[fh] = _OpenFile(fh, ino, flags)
        return fh

    def _handle(self, fh):
        handle = self._handles.get(fh)
        if handle is None:
            raise FsError.ebadf(fh)
        return handle

    def open(self, path, flags=0):
        parent_ino, name = yield from self._resolve_parent(path, charge_op=True)
        child = yield from self._lookup(parent_ino, name)
        if child is None:
            if not flags & OpenFlags.CREAT:
                raise FsError.enoent(path)
            ino = yield from self._create_object(parent_ino, name, FILE,
                                                 0o644, path)
            return self._new_handle(ino, flags)
        if flags & OpenFlags.CREAT and flags & OpenFlags.EXCL:
            raise FsError.eexist(path)
        ino = yield from self._resolve(path)  # follow symlinks to the file
        inode = self._inode(ino, path)
        if inode.is_dir and OpenFlags.wants_write(flags):
            raise FsError.eisdir(path)
        entry = yield from self._hold_attr(ino, RO)
        entry.unpin()
        if flags & OpenFlags.TRUNC and inode.is_file:
            yield from self._truncate_ino(ino, 0)
        return self._new_handle(ino, flags)

    def close(self, fh):
        handle = self._handle(fh)
        yield from self._op_cost()
        if handle.wrote and self.config.fsync_on_close:
            yield from self.data.fsync(handle.ino)
        del self._handles[fh]

    def read(self, fh, offset, size, want_data=False):
        handle = self._handle(fh)
        inode = self._inode(handle.ino)
        if not inode.is_file:
            raise FsError.eisdir(f"fh {fh}")
        yield from self.data.read(handle.ino, offset, size)
        if want_data:
            return inode.data.read(offset, size)
        return max(0, min(inode.size - offset, size))

    def write(self, fh, offset, size=None, data=None):
        handle = self._handle(fh)
        if not OpenFlags.wants_write(handle.flags):
            raise FsError.einval(f"fh {fh} not open for writing")
        inode = self._inode(handle.ino)
        if not inode.is_file:
            raise FsError.eisdir(f"fh {fh}")
        written = inode.data.write(offset, length=size, data=data)
        yield from self.data.write(handle.ino, offset, written)
        handle.wrote = True
        now = self._now()
        inode.size = max(inode.size, offset + written)
        inode.mtime = inode.ctime = now
        cached = self.tokens.cached(("attr", handle.ino))
        if cached is not None and cached.payload is not None:
            cached.payload.size = inode.size
            cached.payload.mtime = now
            cached.payload.ctime = now
        return written

    def fsync(self, fh):
        handle = self._handle(fh)
        yield from self.data.fsync(handle.ino)

    def truncate(self, path, size):
        yield from self._op_cost()
        ino = yield from self._resolve(path)
        inode = self._inode(ino, path)
        if inode.is_dir:
            raise FsError.eisdir(path)
        yield from self._truncate_ino(ino, size)

    def _truncate_ino(self, ino, size):
        inode = self._inode(ino)
        yield from self.data.ensure_range(ino, 0, 1 << 62, XW)
        entry = yield from self._hold_attr(ino, XW)
        try:
            inode.data.truncate(size)
            inode.size = size
            now = self._now()
            inode.mtime = inode.ctime = now
            # Update the cached attributes in place: replacing the payload
            # with a fresh inode snapshot would clobber still-unflushed
            # attribute changes (e.g. a preceding chmod's mode).
            attr = entry.payload
            attr.size = size
            attr.mtime = attr.ctime = now
            entry.mark_dirty(self._attr_flush_cb(ino, entry))
        finally:
            entry.unpin()
