"""The VFS interface shared by the parallel FS, the FUSE layer and COFS.

Every filesystem in the reproduction exposes the same coroutine API, so
workloads run unchanged against bare PFS, FUSE-wrapped PFS, or COFS — and the
differential tests can assert identical observable behaviour.  All methods
are simulation coroutines (``yield from fs.create(...)``) and raise
:class:`~repro.pfs.errors.FsError` with POSIX errno codes on failure.
"""


class FileSystemApi:
    """Abstract VFS: paths in, attributes/handles/data out."""

    def mkdir(self, path, mode=0o755):
        """Create a directory.  EEXIST / ENOENT / ENOTDIR apply."""
        raise NotImplementedError

    def rmdir(self, path):
        """Remove an empty directory (ENOTEMPTY if not empty)."""
        raise NotImplementedError

    def create(self, path, mode=0o644):
        """Create a regular file and open it for writing; returns a handle."""
        raise NotImplementedError

    def mknod(self, path, mode=0o644):
        """Create a regular file without opening it (no data object is
        required to exist beneath; COFS keeps it metadata-only)."""
        raise NotImplementedError

    def open(self, path, flags=0):
        """Open an existing file (or create with O_CREAT); returns a handle."""
        raise NotImplementedError

    def close(self, handle):
        """Close a handle (drains write-behind when fsync-on-close is set)."""
        raise NotImplementedError

    def unlink(self, path):
        """Remove a file or symlink (EISDIR for directories)."""
        raise NotImplementedError

    def stat(self, path):
        """The :class:`~repro.pfs.types.FileAttr` of ``path``."""
        raise NotImplementedError

    def utime(self, path, atime=None, mtime=None):
        """Set access/modification times (None = now)."""
        raise NotImplementedError

    def chmod(self, path, mode):
        """Change permission bits."""
        raise NotImplementedError

    def chown(self, path, uid, gid):
        """Change owner and group."""
        raise NotImplementedError

    def statfs(self):
        """Aggregate filesystem statistics (a dict of counters)."""
        raise NotImplementedError

    def readdir(self, path):
        """The entry names of a directory, sorted."""
        raise NotImplementedError

    def rename(self, old, new):
        """POSIX rename; replaces an existing target when legal."""
        raise NotImplementedError

    def link(self, src, dst):
        """Create a hard link ``dst`` to the file at ``src``."""
        raise NotImplementedError

    def symlink(self, target, path):
        """Create a symbolic link at ``path`` pointing to ``target``."""
        raise NotImplementedError

    def readlink(self, path):
        """The target string of a symlink (EINVAL otherwise)."""
        raise NotImplementedError

    def read(self, handle, offset, size, want_data=False):
        """Read; returns byte count, or the bytes when ``want_data``."""
        raise NotImplementedError

    def write(self, handle, offset, size=None, data=None):
        """Write ``data`` (real bytes) or ``size`` synthetic bytes."""
        raise NotImplementedError

    def fsync(self, handle):
        """Drain write-behind for the handle's file."""
        raise NotImplementedError

    def truncate(self, path, size):
        """Set the file size (zero-fill on extension)."""
        raise NotImplementedError
