"""Common filesystem value types: attributes, open flags, path helpers."""

from dataclasses import dataclass

FILE = "file"
DIRECTORY = "dir"
SYMLINK = "symlink"


class OpenFlags:
    """Open mode bits (a small subset of POSIX flags)."""

    RDONLY = 0x0
    WRONLY = 0x1
    RDWR = 0x2
    CREAT = 0x40
    EXCL = 0x80
    TRUNC = 0x200

    @staticmethod
    def wants_write(flags):
        return bool(flags & (OpenFlags.WRONLY | OpenFlags.RDWR))


@dataclass(slots=True)
class FileAttr:
    """The stat-visible attributes of a file, directory or symlink."""

    ino: int
    kind: str          # FILE, DIRECTORY or SYMLINK
    mode: int
    uid: int
    gid: int
    size: int
    nlink: int
    atime: float
    mtime: float
    ctime: float

    @property
    def is_dir(self):
        return self.kind == DIRECTORY

    @property
    def is_file(self):
        return self.kind == FILE

    @property
    def is_symlink(self):
        return self.kind == SYMLINK


def normalize(path):
    """Normalize ``path`` to an absolute, /-rooted, dot-free form."""
    if not path or not path.startswith("/"):
        raise ValueError(f"path must be absolute: {path!r}")
    parts = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


_SPLIT_MEMO = {}


def split(path):
    """Split a normalized path into (parent_path, leaf_name).

    The root has no leaf: ``split("/") == ("/", "")``.  Results are
    memoized (splitting is pure and benchmark paths repeat heavily).
    """
    memo = _SPLIT_MEMO
    cached = memo.get(path)
    if cached is not None:
        return cached
    norm = normalize(path)
    if norm == "/":
        result = ("/", "")
    else:
        parent, _slash, name = norm.rpartition("/")
        result = (parent or "/", name)
    if len(memo) >= _COMPONENTS_MEMO_MAX:
        memo.clear()
    memo[path] = result
    return result


#: memo of path -> component tuple; benchmark workloads walk the same few
#: hundred paths millions of times, and normalization is pure.
_COMPONENTS_MEMO = {}
_COMPONENTS_MEMO_MAX = 8192


def components(path):
    """The component names of a normalized path (empty for the root).

    Returns a tuple (treat as immutable); results are memoized.
    """
    memo = _COMPONENTS_MEMO
    cached = memo.get(path)
    if cached is not None:
        return cached
    norm = normalize(path)
    parts = () if norm == "/" else tuple(norm[1:].split("/"))
    if len(memo) >= _COMPONENTS_MEMO_MAX:
        memo.clear()
    memo[path] = parts
    return parts


def join(parent, name):
    """Join a parent path and a leaf name."""
    if parent.endswith("/"):
        return parent + name
    return f"{parent}/{name}"
