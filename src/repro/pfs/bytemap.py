"""Sparse file contents with an optional real-bytes fast path.

Benchmarks write gigabytes of synthetic data: storing actual bytes would be
wasteful, so a :class:`ByteMap` records written *extents* and only keeps real
payloads when the caller supplies them (semantic tests do, workloads don't).
Reads return real bytes where they exist, zeros for written-but-synthetic
ranges, and zeros for holes — matching POSIX sparse-file semantics closely
enough for differential testing.
"""

import bisect


class ByteMap:
    """Extent-tracked file contents."""

    def __init__(self):
        self._extents = []  # sorted, non-overlapping [start, end, payload|None]
        self.size = 0

    def __repr__(self):
        return f"<ByteMap size={self.size} extents={len(self._extents)}>"

    # -- writing ------------------------------------------------------------

    def write(self, offset, length=None, data=None):
        """Record a write at ``offset``.

        Exactly one of ``length`` (synthetic write) or ``data`` (real bytes)
        must be given.  Returns the number of bytes written.
        """
        if (length is None) == (data is None):
            raise ValueError("write() needs exactly one of length= or data=")
        if offset < 0:
            raise ValueError("negative offset")
        payload = bytes(data) if data is not None else None
        n = len(payload) if payload is not None else int(length)
        if n < 0:
            raise ValueError("negative length")
        if n == 0:
            return 0
        self._insert(offset, offset + n, payload)
        if offset + n > self.size:
            self.size = offset + n
        return n

    def truncate(self, new_size):
        """Cut or extend the logical size (extension creates a hole)."""
        if new_size < 0:
            raise ValueError("negative size")
        kept = []
        for start, end, payload in self._extents:
            if start >= new_size:
                continue
            if end > new_size:
                end_cut = new_size
                if payload is not None:
                    payload = payload[: end_cut - start]
                kept.append([start, end_cut, payload])
            else:
                kept.append([start, end, payload])
        self._extents = kept
        self.size = new_size

    def _insert(self, start, end, payload):
        starts = [e[0] for e in self._extents]
        idx = bisect.bisect_left(starts, start)
        # Absorb/trim overlaps to the left.
        if idx > 0 and self._extents[idx - 1][1] > start:
            prev = self._extents[idx - 1]
            if prev[1] > end:
                # new extent splits the previous one
                tail_payload = (
                    prev[2][end - prev[0]:] if prev[2] is not None else None
                )
                self._extents.insert(
                    idx, [end, prev[1], tail_payload]
                )
            if prev[2] is not None:
                prev[2] = prev[2][: start - prev[0]]
            prev[1] = start
        # Remove/trim overlaps to the right.
        while idx < len(self._extents) and self._extents[idx][0] < end:
            cur = self._extents[idx]
            if cur[1] <= end:
                self._extents.pop(idx)
                continue
            if cur[2] is not None:
                cur[2] = cur[2][end - cur[0]:]
            cur[0] = end
            break
        self._extents.insert(idx, [start, end, payload])

    # -- reading --------------------------------------------------------------

    def read(self, offset, length):
        """Return ``length`` bytes starting at ``offset`` (zero-filled holes).

        Reads past the logical size are truncated, as POSIX does.
        """
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        end = min(offset + length, self.size)
        if end <= offset:
            return b""
        out = bytearray(end - offset)
        for start, ext_end, payload in self._extents:
            if ext_end <= offset or start >= end:
                continue
            if payload is None:
                continue  # synthetic extent reads as zeros
            lo = max(start, offset)
            hi = min(ext_end, end)
            out[lo - offset: hi - offset] = payload[lo - start: hi - start]
        return bytes(out)

    def written_bytes(self, offset, length):
        """How many bytes in [offset, offset+length) lie in written extents."""
        end = offset + length
        covered = 0
        for start, ext_end, _payload in self._extents:
            if ext_end <= offset or start >= end:
                continue
            covered += min(ext_end, end) - max(start, offset)
        return covered
