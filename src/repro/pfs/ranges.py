"""Byte-range tokens for file data.

GPFS hands out byte-range tokens greedily: the first writer of a file gets
``[0, inf)`` and later conflicting requests *split* existing grants, so
disjoint parallel access settles into conflict-free ranges after a brief
negotiation — which is why IOR's segmented shared-file writes perform well
(Table I).  Revoking a range forces the holder to flush dirty cached chunks
overlapping it before the new grant is issued.
"""

from repro.sim.resources import Resource

EOF = 1 << 62  # "infinity" for range ends

RO = "ro"
XW = "xw"


def _overlap(a_lo, a_hi, b_lo, b_hi):
    return a_lo < b_hi and b_lo < a_hi


class _FileRanges:
    __slots__ = ("grants", "lock")

    def __init__(self, sim):
        self.grants = []  # [lo, hi, node, mode]
        self.lock = Resource(sim, capacity=1)


class RangeTokenServer:
    """Range-token manager (a service co-located with the token server)."""

    def __init__(self, machine, config):
        self.machine = machine
        self.sim = machine.sim
        self.config = config
        self._files = {}
        self._clients = {}
        self.acquires = 0
        self.range_revokes = 0

    def attach_client(self, name, machine):
        self._clients[name] = machine

    def _state(self, ino):
        state = self._files.get(ino)
        if state is None:
            state = _FileRanges(self.sim)
            self._files[ino] = state
        return state

    def grants_of(self, ino):
        """Snapshot for tests/diagnostics."""
        return [tuple(g) for g in self._files[ino].grants] if ino in self._files else []

    def forget(self, ino):
        """Drop all state for a destroyed file (no revocations needed)."""
        self._files.pop(ino, None)

    # -- RPC handlers ----------------------------------------------------------

    def acquire(self, node, ino, lo, hi, mode, desired_lo, desired_hi):
        """Grant ``node`` a range covering [lo, hi) in ``mode``.

        The grant is widened toward [desired_lo, desired_hi) as far as it can
        go without touching other nodes' remaining grants.  Conflicting
        portions of other nodes' grants are revoked (dirty data flushed at
        the holders) first.  Returns the granted (lo, hi).
        """
        yield from self.machine.compute(self.config.token_server_cpu_ms)
        state = self._state(ino)
        with state.lock.request() as claim:
            yield claim
            conflicts = [
                g for g in state.grants
                if g[2] != node and _overlap(g[0], g[1], lo, hi)
                and (mode == XW or g[3] == XW)
            ]
            for grant in conflicts:
                self.range_revokes += 1
                yield from self.machine.call(
                    self._clients[grant[2]], "ranges", "revoke_range",
                    args=(ino, lo, hi),
                    req_size=self.config.token_msg_bytes,
                    resp_size=self.config.token_msg_bytes,
                )
            self._trim(state, lo, hi, exclude=node, mode=mode)
            g_lo, g_hi = self._widen(state, node, mode, lo, hi,
                                     desired_lo, desired_hi)
            state.grants.append([g_lo, g_hi, node, mode])
            self._coalesce(state, node, mode)
            self.acquires += 1
        return (g_lo, g_hi)

    def release_all(self, node, ino):
        """Voluntary release of every range ``node`` holds on ``ino``."""
        yield from self.machine.compute(self.config.token_server_cpu_ms)
        state = self._files.get(ino)
        if state is not None:
            state.grants = [g for g in state.grants if g[2] != node]
        return True

    # -- grant bookkeeping --------------------------------------------------------

    def _trim(self, state, lo, hi, exclude, mode):
        """Shed other nodes' conflicting grants around [lo, hi).

        A grant that *spans* the requested range is split at the requester's
        offset and its forward tail is released too (not just [lo, hi)):
        access is overwhelmingly forward-sequential, so leaving the old
        holder a residual tail would force a fresh revocation on every
        subsequent transfer — the requester instead inherits room to grow,
        which is how disjoint parallel writers settle into conflict-free
        ranges after one negotiation each.
        """
        kept = []
        for g in state.grants:
            g_lo, g_hi, g_node, g_mode = g
            conflicting = g_node != exclude and (mode == XW or g_mode == XW)
            if not conflicting or not _overlap(g_lo, g_hi, lo, hi):
                kept.append(g)
                continue
            if g_lo < lo:
                kept.append([g_lo, lo, g_node, g_mode])
            elif g_hi > hi:
                kept.append([hi, g_hi, g_node, g_mode])
        state.grants = kept

    def _widen(self, state, node, mode, lo, hi, desired_lo, desired_hi):
        """The widest grant within desires that avoids remaining conflicts."""
        g_lo = min(desired_lo, lo)
        g_hi = max(desired_hi, hi)
        for other_lo, other_hi, other_node, other_mode in state.grants:
            if other_node == node:
                continue
            if mode == RO and other_mode == RO:
                continue
            if other_hi <= lo:
                g_lo = max(g_lo, other_hi)
            elif other_lo >= hi:
                g_hi = min(g_hi, other_lo)
        return (g_lo, g_hi)

    def _coalesce(self, state, node, mode):
        """Merge adjacent/overlapping grants held by ``node`` in ``mode``."""
        mine = sorted(
            (g for g in state.grants if g[2] == node and g[3] == mode),
            key=lambda g: g[0],
        )
        others = [g for g in state.grants if g[2] != node or g[3] != mode]
        merged = []
        for g in mine:
            if merged and g[0] <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], g[1])
            else:
                merged.append(g)
        state.grants = others + merged
