"""The distributed token (lock) manager.

GPFS-style tokens: a central token server grants per-object tokens in
read-only (``RO``) or exclusive (``XW``) mode to client nodes, which cache
them.  A conflicting request triggers *revocation*: the server calls back
each conflicting holder, which waits for local users to unpin the token,
flushes any dirty state attached to it (a log force and/or attribute
write-back), and acknowledges.  All queueing behaviour — FIFO per token key,
revocations executing serially at each holder, log forces contending on the
NSD log disks — emerges from the simulation and produces the node-count
scaling of the paper's Figs. 2, 4, 5 and 6.

Token keys are tuples: ``("attr", ino)`` for inode attributes, ``("dir",
ino)`` for a directory's content + attributes (the per-directory serializer
for creates/unlinks), and byte ranges are handled by
:class:`RangeTokenServer` with range-splitting grants.
"""

from repro.sim.resources import Resource

RO = "ro"
XW = "xw"


def compatible(held, wanted):
    """Can ``wanted`` be granted alongside an existing ``held`` mode?"""
    return held == RO and wanted == RO


def mode_covers(held, wanted):
    """Does holding ``held`` already satisfy a request for ``wanted``?"""
    return held == XW or wanted == RO


class _KeyState:
    __slots__ = ("holders", "lock")

    def __init__(self, sim):
        self.holders = {}  # node name -> mode
        self.lock = Resource(sim, capacity=1)


class TokenServer:
    """Central token manager (a service on one of the server machines).

    Inode-attribute tokens honour *segment delegation*: a node that
    allocated an inode from its own allocation segment holds that inode's
    token implicitly (no server interaction at create time); the first
    conflicting request materializes the delegation as an ordinary holder
    entry and revokes it like any other.
    """

    def __init__(self, machine, config, state=None):
        self.machine = machine
        self.sim = machine.sim
        self.config = config
        self.state = state
        self._keys = {}
        self._clients = {}  # node name -> machine
        self.acquires = 0
        self.revocations = 0

    def attach_client(self, name, machine):
        """Register a client node so revocations can reach it."""
        self._clients[name] = machine

    def _state(self, key):
        state = self._keys.get(key)
        if state is None:
            state = _KeyState(self.sim)
            self._keys[key] = state
            self._materialize_delegation(key, state)
        return state

    def _materialize_delegation(self, key, state):
        """Record the implicit segment-delegated holder of a fresh key."""
        if self.state is None or key[0] != "attr":
            return
        inodes = self.state.inodes
        owner = inodes.segment_owner(inodes.segment_of(key[1]))
        if owner is not None and owner in self._clients:
            state.holders[owner] = XW

    def holders_of(self, key):
        """Snapshot of holder modes (diagnostics / tests)."""
        return dict(self._keys[key].holders) if key in self._keys else {}

    # -- RPC handlers -----------------------------------------------------------

    def acquire(self, node, key, mode):
        """Grant ``mode`` on ``key`` to ``node``, revoking conflicts.

        Requests for the same key are served FIFO; each may have to revoke
        the current conflicting holders (in parallel) before the grant.  The
        grant is *pushed* to the requester (an ``install`` message) while the
        key is still locked, so a revocation triggered by the next queued
        request can never overtake the grant — the race would otherwise
        leave two nodes believing they hold conflicting tokens.
        """
        yield from self.machine.compute(self.config.token_server_cpu_ms)
        state = self._state(key)
        with state.lock.request() as claim:
            yield claim
            yield from self._revoke_conflicts(state, key, node, mode)
            held = state.holders.get(node)
            if held is None or not mode_covers(held, mode):
                state.holders[node] = mode
            self.acquires += 1
            yield from self.machine.call(
                self._clients[node], "tokens", "install",
                args=(key, state.holders[node]),
                req_size=self.config.token_msg_bytes,
                resp_size=self.config.token_msg_bytes,
            )
        return mode

    def acquire_batch(self, node, requests):
        """Grant a batch of (key, mode) requests in one message."""
        extra = self.config.token_batch_item_cpu_ms * max(0, len(requests) - 1)
        yield from self.machine.compute(extra)
        for key, mode in requests:
            yield from self.acquire(node, key, mode)
        return len(requests)

    def release(self, node, keys):
        """Voluntary relinquish of a batch of keys by ``node``."""
        yield from self.machine.compute(
            self.config.token_server_cpu_ms
            + self.config.token_batch_item_cpu_ms * max(0, len(keys) - 1)
        )
        for key in keys:
            state = self._keys.get(key)
            if state is not None:
                state.holders.pop(node, None)
        return len(keys)

    def revoke_all(self, node, key):
        """Strip every holder of ``key`` (used when an object is destroyed).

        ``node`` (the requester) keeps nothing either; its own cached state
        is cleaned up locally by the caller.
        """
        yield from self.machine.compute(self.config.token_server_cpu_ms)
        state = self._keys.get(key)
        if state is None:
            return 0
        with state.lock.request() as claim:
            yield claim
            victims = [n for n in state.holders if n != node]
            yield from self._revoke_nodes(victims, key, None)
            for victim in victims:
                state.holders.pop(victim, None)
            state.holders.pop(node, None)
        return len(victims)

    # -- revocation ------------------------------------------------------------------

    def _revoke_conflicts(self, state, key, node, mode):
        victims = [
            holder
            for holder, held in state.holders.items()
            if holder != node and not compatible(held, mode)
        ]
        if not victims:
            return
        downgrade_to = RO if mode == RO else None
        yield from self._revoke_nodes(victims, key, downgrade_to)
        for victim in victims:
            if downgrade_to is None:
                state.holders.pop(victim, None)
            else:
                state.holders[victim] = downgrade_to

    def _revoke_nodes(self, victims, key, downgrade_to):
        if not victims:
            return
        self.revocations += len(victims)
        calls = [
            self.sim.process(
                self.machine.call(
                    self._clients[victim], "tokens", "revoke",
                    args=(key, downgrade_to),
                    req_size=self.config.token_msg_bytes,
                    resp_size=self.config.token_msg_bytes,
                ),
                name=f"revoke:{victim}",
            )
            for victim in victims
        ]
        yield self.sim.all_of(calls)
