"""Per-node data cache and the client data path.

Models the GPFS page pool: a bounded chunk cache with write-behind (a pool
of background flushers drains dirty chunks to the NSD data disks, overlapping
network and disk), sequential-read detection with pipelined prefetch, and
byte-range token handling.  Reads of node-local cached data cost only memory
copies — the behaviour that makes GPFS "extremely good" for small node-local
files in Table I, and the bar COFS's FUSE overhead has to clear.
"""

from collections import OrderedDict, deque

from repro.pfs.ranges import EOF, RO, XW


class DataPath:
    """The data side of one client: page pool, range tokens, flushers."""

    def __init__(self, client):
        self.client = client
        self.machine = client.machine
        self.sim = client.sim
        self.config = client.config
        self.capacity_chunks = max(
            1, self.config.page_pool_bytes // self.config.chunk_bytes
        )
        self._chunks = OrderedDict()   # (ino, idx) -> [state, size]
        self._dirty_fifo = deque()
        self._dirty_count = 0
        self._flushers = 0
        self.max_flushers = 4
        self._space_waiters = deque()
        self._fsync_waiters = {}       # ino -> [events]
        self._grants = {}              # ino -> [[lo, hi, mode]]
        self._inflight_reads = {}      # (ino, idx) -> event
        self._last_seq_end = {}        # ino -> offset after last read
        self._last_seq_chunk = {}      # ino -> highest chunk of the run
        self.cache_hits = 0
        self.cache_misses = 0

    # -- range tokens -----------------------------------------------------------

    def _covered(self, ino, lo, hi, mode):
        for g_lo, g_hi, g_mode in self._grants.get(ino, ()):
            if g_lo <= lo and hi <= g_hi and (g_mode == XW or mode == RO):
                return True
        return False

    def ensure_range(self, ino, lo, hi, mode):
        """Coroutine: make sure this node holds [lo, hi) in ``mode``."""
        if self._covered(ino, lo, hi, mode):
            return
        granted = yield from self.machine.call(
            self.client.pfs.range_machine, "rangemgr", "acquire",
            args=(self.machine.name, ino, lo, hi, mode, 0, EOF),
            req_size=self.config.token_msg_bytes,
            resp_size=self.config.token_msg_bytes,
        )
        self._grants.setdefault(ino, []).append([granted[0], granted[1], mode])

    def revoke_range(self, ino, lo, hi):
        """RPC handler: flush dirty chunks in [lo, hi) and shed the range."""
        chunk = self.config.chunk_bytes
        for key, slot in list(self._chunks.items()):
            c_ino, idx = key
            if c_ino != ino or slot[0] != "dirty":
                continue
            c_lo = idx * chunk
            if c_lo < hi and lo < c_lo + chunk:
                yield from self._write_back(key, slot)
        kept = []
        for g_lo, g_hi, g_mode in self._grants.get(ino, ()):
            if g_hi <= lo or g_lo >= hi:
                kept.append([g_lo, g_hi, g_mode])
                continue
            if g_lo < lo:
                kept.append([g_lo, lo, g_mode])
            if g_hi > hi:
                kept.append([hi, g_hi, g_mode])
        if kept:
            self._grants[ino] = kept
        else:
            self._grants.pop(ino, None)
        return True

    # -- writes ----------------------------------------------------------------------

    def write(self, ino, offset, size):
        """Coroutine: buffered write of ``size`` bytes at ``offset``."""
        cfg = self.config
        yield from self.ensure_range(ino, offset, offset + size, XW)
        yield from self.machine.compute(size / cfg.mem_copy_bw)
        for idx, span in self._chunk_spans(offset, size):
            yield from self._make_room()
            key = (ino, idx)
            slot = self._chunks.get(key)
            if slot is None:
                self._chunks[key] = ["dirty", span]
                self._mark_dirty(key)
            else:
                # Accumulate coverage (sub-chunk writes arrive in pieces,
                # e.g. through the FUSE MTU); bounded by the chunk size.
                slot[1] = min(self.config.chunk_bytes, slot[1] + span)
                if slot[0] != "dirty":
                    slot[0] = "dirty"
                    self._mark_dirty(key)
                self._chunks.move_to_end(key)

    def _chunk_spans(self, offset, size):
        """(chunk_index, bytes_touched_in_chunk) pairs for a byte range."""
        chunk = self.config.chunk_bytes
        end = offset + size
        idx = offset // chunk
        out = []
        while idx * chunk < end:
            lo = max(offset, idx * chunk)
            hi = min(end, (idx + 1) * chunk)
            out.append((idx, hi - lo))
            idx += 1
        return out

    def _mark_dirty(self, key):
        self._dirty_fifo.append(key)
        self._dirty_count += 1
        while self._flushers < self.max_flushers and self._flushers < self._dirty_count:
            self._flushers += 1
            self.sim.process(self._flusher(), name=f"flusher:{self.machine.name}")

    def _make_room(self):
        while len(self._chunks) >= self.capacity_chunks:
            evicted = False
            for key in self._chunks:
                if self._chunks[key][0] == "clean":
                    del self._chunks[key]
                    evicted = True
                    break
            if evicted:
                continue
            gate = self.sim.event()
            self._space_waiters.append(gate)
            yield gate

    def _flusher(self):
        while self._dirty_fifo:
            key = self._dirty_fifo.popleft()
            slot = self._chunks.get(key)
            if slot is None or slot[0] != "dirty":
                self._dirty_count -= 1
                continue
            yield from self._write_back(key, slot)
            self._dirty_count -= 1
        self._flushers -= 1

    def _write_back(self, key, slot):
        ino, idx = key
        slot[0] = "flushing"
        nsd = self.client.pfs.nsd_for_chunk(ino, idx)
        yield from self.machine.call(
            nsd, "nsd", "write_chunk", args=(ino, idx, slot[1]),
            req_size=slot[1], resp_size=128,
        )
        if slot[0] == "flushing":
            slot[0] = "clean"
        while self._space_waiters:
            self._space_waiters.popleft().succeed()
        if not self._has_dirty(ino):
            for gate in self._fsync_waiters.pop(ino, ()):
                gate.succeed()

    def _has_dirty(self, ino):
        return any(
            k[0] == ino and slot[0] in ("dirty", "flushing")
            for k, slot in self._chunks.items()
        )

    def fsync(self, ino):
        """Coroutine: wait until no dirty chunks remain for ``ino``."""
        while self._has_dirty(ino):
            gate = self.sim.event()
            self._fsync_waiters.setdefault(ino, []).append(gate)
            yield gate

    # -- reads -----------------------------------------------------------------------

    def read(self, ino, offset, size):
        """Coroutine: read ``size`` bytes at ``offset`` through the cache.

        Read-ahead triggers only when a sequential run *crosses a chunk
        boundary*: a random reader whose transfers arrive in sub-chunk
        pieces (e.g. through the FUSE MTU) looks sequential inside each
        chunk, and prefetching for it would waste several chunks of
        bandwidth per transfer.
        """
        cfg = self.config
        yield from self.ensure_range(ino, offset, offset + size, RO)
        spans = self._chunk_spans(offset, size)
        contiguous = self._last_seq_end.get(ino) == offset
        last_chunk_seen = self._last_seq_chunk.get(ino)
        crossed = last_chunk_seen is not None and spans and \
            spans[-1][0] > last_chunk_seen
        if contiguous:
            self._last_seq_chunk[ino] = max(
                spans[-1][0], last_chunk_seen if last_chunk_seen is not None else -1
            )
        else:
            self._last_seq_chunk[ino] = spans[-1][0] if spans else None
        self._last_seq_end[ino] = offset + size
        for idx, span in spans:
            yield from self._fetch_chunk(ino, idx, span)
        if contiguous and crossed and spans:
            last_idx = spans[-1][0]
            for ahead in range(1, cfg.prefetch_depth + 1):
                self._prefetch(ino, last_idx + ahead)
        yield from self.machine.compute(size / cfg.mem_copy_bw)

    def _fetch_chunk(self, ino, idx, span):
        key = (ino, idx)
        slot = self._chunks.get(key)
        if slot is not None:
            self.cache_hits += 1
            self._chunks.move_to_end(key)
            return
        inflight = self._inflight_reads.get(key)
        if inflight is not None:
            self.cache_hits += 1
            yield inflight
            return
        self.cache_misses += 1
        yield from self._issue_read(ino, idx, max(span, self._disk_span(ino, idx)))

    def _disk_span(self, ino, idx):
        """How much of chunk ``idx`` exists on disk (for transfer sizing)."""
        inode = self.client.state.inodes.get(ino)
        if inode is None or inode.data is None:
            return 0
        chunk = self.config.chunk_bytes
        lo = idx * chunk
        return max(0, min(inode.size - lo, chunk))

    def _issue_read(self, ino, idx, size):
        key = (ino, idx)
        gate = self.sim.event()
        self._inflight_reads[key] = gate
        nsd = self.client.pfs.nsd_for_chunk(ino, idx)
        try:
            yield from self.machine.call(
                nsd, "nsd", "read_chunk", args=(ino, idx, max(size, 1)),
                req_size=128, resp_size=max(size, 1),
            )
        finally:
            del self._inflight_reads[key]
            gate.succeed()
        yield from self._make_room()
        if key not in self._chunks:
            self._chunks[key] = ["clean", size]

    def _prefetch(self, ino, idx):
        key = (ino, idx)
        if key in self._chunks or key in self._inflight_reads:
            return
        if idx * self.config.chunk_bytes >= self._file_size(ino):
            return
        self.sim.process(
            self._issue_read(ino, idx, self._disk_span(ino, idx)),
            name=f"prefetch:{self.machine.name}",
        )

    def _file_size(self, ino):
        inode = self.client.state.inodes.get(ino)
        return inode.size if inode is not None else 0

    # -- teardown -----------------------------------------------------------------------

    def drop_ino(self, ino):
        """Discard cached chunks and grants for a destroyed file."""
        for key in [k for k in self._chunks if k[0] == ino]:
            del self._chunks[key]
        self._grants.pop(ino, None)
        self._last_seq_end.pop(ino, None)
        self._last_seq_chunk.pop(ino, None)
