"""Inodes and the shared on-disk inode table.

Inodes are packed several to a disk block (``pack`` inodes per block): the
block is the disk-I/O and server-cache granule, which is how "unrelated files
in the same directory share management-information granules" in the paper's
problem statement.  Attribute *tokens* are per-inode; *fetches* are per-block
at the server, and the client-side fetch coalescer
(:mod:`repro.pfs.client`) merges concurrent fetches for the same block.
"""

from repro.pfs.bytemap import ByteMap
from repro.pfs.directory import ExtendibleDir
from repro.pfs.types import DIRECTORY, FILE, SYMLINK, FileAttr


class Inode:
    """The authoritative (shared-disk) state of one file system object."""

    __slots__ = (
        "ino", "kind", "mode", "uid", "gid", "size", "nlink",
        "atime", "mtime", "ctime", "data", "dir", "symlink_target",
        "creator",
    )

    def __init__(self, ino, kind, mode, uid, gid, now, creator,
                 dir_block_capacity=64):
        self.ino = ino
        self.kind = kind
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.size = 0
        self.nlink = 2 if kind == DIRECTORY else 1
        self.atime = now
        self.mtime = now
        self.ctime = now
        self.creator = creator
        self.data = ByteMap() if kind == FILE else None
        self.dir = ExtendibleDir(dir_block_capacity) if kind == DIRECTORY else None
        self.symlink_target = None

    @property
    def is_dir(self):
        return self.kind == DIRECTORY

    @property
    def is_file(self):
        return self.kind == FILE

    @property
    def is_symlink(self):
        return self.kind == SYMLINK

    def attr(self):
        """A stat snapshot of this inode."""
        kind = self.kind
        size = len(self.dir) if kind == DIRECTORY else self.size
        return FileAttr(self.ino, kind, self.mode, self.uid, self.gid,
                        size, self.nlink, self.atime, self.mtime, self.ctime)


class InodeTable:
    """Allocator and registry for inodes, with block packing.

    Inode numbers are handed out from per-creator *allocation segments*
    (GPFS's inode allocation map segments): each creating node draws from
    its own contiguous range, so parallel creates never contend on inode
    allocation, and a node's fresh inodes pack into its own inode blocks.
    """

    SEGMENT = 1 << 14  # inos per allocation segment

    def __init__(self, pack=32, dir_block_capacity=64):
        self.pack = pack
        self.dir_block_capacity = dir_block_capacity
        self._inodes = {}
        self._segments = {}     # creator -> iterator over its current segment
        self._segment_owner = {}  # segment id -> creator
        self._next_segment = 0

    def __len__(self):
        return len(self._inodes)

    def __contains__(self, ino):
        return ino in self._inodes

    def segment_of(self, ino):
        """The allocation segment id an inode number belongs to."""
        return ino // self.SEGMENT

    def segment_owner(self, segment_id):
        """The node the segment was assigned to (None if unassigned)."""
        return self._segment_owner.get(segment_id)

    def _fresh_ino(self, creator):
        cursor = self._segments.get(creator)
        if cursor is None or cursor[0] >= cursor[1]:
            seg = self._next_segment
            self._next_segment += 1
            self._segment_owner[seg] = creator
            base = seg * self.SEGMENT
            cursor = [base + 1 if base == 0 else base, base + self.SEGMENT]
            self._segments[creator] = cursor
        ino = cursor[0]
        cursor[0] += 1
        return ino

    def allocate(self, kind, mode, uid, gid, now, creator):
        """Create a fresh inode (from the creator's segment) and return it."""
        ino = self._fresh_ino(creator)
        inode = Inode(
            ino, kind, mode, uid, gid, now, creator,
            dir_block_capacity=self.dir_block_capacity,
        )
        self._inodes[ino] = inode
        return inode

    def get(self, ino):
        """The inode for ``ino`` or None if freed/never allocated."""
        return self._inodes.get(ino)

    def free(self, ino):
        """Drop an inode (callers ensure nlink reached zero)."""
        self._inodes.pop(ino, None)

    def block_of(self, ino):
        """The inode-block id (fetch/cache granule) holding ``ino``."""
        return ino // self.pack

    def inos_in_block(self, block_id):
        """All live inode numbers packed in ``block_id``."""
        lo = block_id * self.pack
        return [i for i in range(lo, lo + self.pack) if i in self._inodes]
