"""Per-node token cache and revocation handling.

Each client node caches tokens in bounded LRU caches (the attribute-token
capacity is the paper's 1024-entry cliff).  Operations *pin* a token while
using it; revocations wait for pins to drain, flush dirty state attached to
the token (attribute write-back + log force), then downgrade or drop it.

Concurrent token acquisitions from the same node are pumped through a small
batcher: while one request message is in flight, later requests queue and go
out together in one batched message.  A single synchronous process never
batches; two processes on the node do — which reproduces the paper's
observation (Fig. 1) that a second process "slightly compensates" beyond the
cache cliff.
"""

from repro.pfs.cache import LruDict
from repro.pfs.tokens import mode_covers
from repro.sim.resources import Resource


class TokenEntry:
    """A cached token plus the client state attached to it."""

    __slots__ = ("key", "mode", "pins", "prepins", "dirty", "flush_cb",
                 "on_drop", "payload", "revoking", "_waiters")

    def __init__(self, key, mode):
        self.key = key
        self.mode = mode
        self.pins = 0
        self.prepins = 0  # courtesy pins from server installs, not yet adopted
        self.dirty = False
        self.flush_cb = None
        self.on_drop = None
        self.payload = None
        self.revoking = False
        self._waiters = []

    def pin(self):
        self.pins += 1

    def unpin(self):
        if self.pins <= 0:
            raise RuntimeError(f"unpin of unpinned token {self.key}")
        self.pins -= 1
        if self.pins == 0:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.succeed()

    def mark_dirty(self, flush_cb):
        self.dirty = True
        self.flush_cb = flush_cb


class TokenClient:
    """The token cache of one client node (also its revocation service)."""

    def __init__(self, machine, server_machine, config):
        self.machine = machine
        self.sim = machine.sim
        self.server_machine = server_machine
        self.config = config
        pinned = lambda entry: entry.pins > 0  # noqa: E731 - tiny predicate
        self._caches = {
            "attr": LruDict(config.attr_cache_entries, pinned=pinned),
            "dir": LruDict(config.dir_token_entries, pinned=pinned),
        }
        self._acq_queue = []
        self._acq_wake = None  # parked acquire pump's gate
        self._acq_started = False
        self._inflight_acquires = {}  # key -> [done events awaiting grant]
        self._relinquish = []
        self._revoke_service = Resource(machine.sim, capacity=1)
        self.flushes = 0
        self.revokes_served = 0

    def _cache_for(self, key):
        return self._caches[key[0]]

    def cached(self, key):
        """The cached entry for ``key`` without recency effects, or None."""
        return self._cache_for(key).peek(key)

    def get_covering(self, key, mode):
        """The cached, quiescent entry covering ``mode``, or None.

        Touches recency (and the hit/miss counters) exactly like the
        :meth:`hold` hit path — inlined, as this runs on every walk step.
        The caller still has to pin the entry before any yield.
        """
        cache = self._caches[key[0]]
        entry = cache._data.get(key)
        if entry is None:
            cache.misses += 1
            return None
        cache.hits += 1
        cache._data.move_to_end(key)
        if not entry.revoking and mode_covers(entry.mode, mode):
            return entry
        return None

    def hold_cached(self, key, mode):
        """Non-coroutine fast path of :meth:`hold`: the pinned entry on a
        cache hit, or None when the caller must take the full path."""
        entry = self.get_covering(key, mode)
        if entry is not None:
            entry.pins += 1
        return entry

    # -- acquiring -------------------------------------------------------------

    def hold(self, key, mode, on_drop=None):
        """Coroutine: pin a token for ``key`` with at least ``mode``.

        Returns the (pinned) :class:`TokenEntry`.  The caller must
        :meth:`TokenEntry.unpin` it when the operation completes.
        """
        entry = self.get_covering(key, mode)
        if entry is not None:
            entry.pin()
            return entry
        cache = self._cache_for(key)
        # Miss, upgrade, or mid-revocation: go to the token server (batched).
        # The grant is installed into the cache by the server's push (see
        # TokenServer.acquire) before the RPC reply arrives, carrying a
        # courtesy pin so a conflicting revocation cannot snatch the token
        # away before this operation has used it once.
        yield from self._acquire(key, mode)
        entry = cache.get(key)
        if entry is None:  # pragma: no cover - install guarantees presence
            raise RuntimeError(f"token {key} missing after grant")
        if not mode_covers(entry.mode, mode):
            entry.mode = mode
        if on_drop is not None:
            entry.on_drop = on_drop
        if entry.prepins > 0:
            entry.prepins -= 1  # adopt the install's courtesy pin
        else:
            entry.pin()
        return entry

    def install(self, key, mode):
        """RPC handler: the server pushes a freshly granted token.

        Runs while the server still holds the key lock, so the entry is in
        the cache — pinned on behalf of the in-flight requester — before any
        subsequent revocation can be issued.
        """
        cache = self._cache_for(key)
        entry = cache.peek(key)
        if entry is None or entry.revoking:
            entry = TokenEntry(key, mode)
            yield from self._install(cache, key, entry)
        elif not mode_covers(entry.mode, mode):
            entry.mode = mode
        entry.pin()
        entry.prepins += 1
        # Wake the waiting hold() now: the grant *message* transfers the
        # token.  Waiting for the RPC reply instead can deadlock when the
        # adopter's request is queued behind the very acquire whose
        # revocation waits on this courtesy pin.
        for done in self._inflight_acquires.get(key, ()):
            if not done.triggered:
                done.succeed()
                break
        return True

    def grant_local(self, key, mode, on_drop=None):
        """Coroutine: install a segment-delegated token without the server.

        Valid only for objects this node allocated from its own segment —
        the token server treats the segment owner as an implicit holder, so
        coherence is preserved when another node asks for the same key.
        """
        cache = self._cache_for(key)
        entry = TokenEntry(key, mode)
        if on_drop is not None:
            entry.on_drop = on_drop
        yield from self._install(cache, key, entry)
        entry.pin()
        return entry

    def _install(self, cache, key, entry):
        evicted = cache.put(key, entry)
        for _key, old in evicted:
            if old.dirty and old.flush_cb is not None:
                # Voluntary evictions flush in the background (the sync
                # daemon); only revocations flush synchronously.
                self.flushes += 1
                old.dirty = False
                self.sim.process(
                    old.flush_cb(), name=f"evict-flush:{self.machine.name}"
                )
            if old.on_drop is not None:
                old.on_drop(old)
            self._queue_relinquish(old.key)
        return
        yield  # pragma: no cover - keeps this a generator for uniform call sites

    def _acquire(self, key, mode):
        done = self.sim.event()
        self._acq_queue.append((key, mode, done))
        wake = self._acq_wake
        if wake is not None:
            self._acq_wake = None
            wake.succeed()
        elif not self._acq_started:
            self._acq_started = True
            self.sim.process(self._acq_pump(), name=f"tok-pump:{self.machine.name}")
        yield done
        if not done.ok:  # pragma: no cover - server failures are fatal here
            raise done.value

    def _acq_pump(self):
        cfg = self.config
        while True:
            yield from self._acq_pump_burst(cfg)
            gate = self.sim.event()
            self._acq_wake = gate
            yield gate

    def _acq_pump_burst(self, cfg):
        while self._acq_queue:
            batch = self._acq_queue[:8]
            del self._acq_queue[: len(batch)]
            for key, _mode, done in batch:
                self._inflight_acquires.setdefault(key, []).append(done)
            try:
                if len(batch) == 1:
                    key, mode, done = batch[0]
                    yield from self.machine.call(
                        self.server_machine, "tokmgr", "acquire",
                        args=(self.machine.name, key, mode),
                        req_size=cfg.token_msg_bytes,
                        resp_size=cfg.token_msg_bytes,
                    )
                else:
                    yield from self.machine.call(
                        self.server_machine, "tokmgr", "acquire_batch",
                        args=(
                            self.machine.name,
                            [(key, mode) for key, mode, _done in batch],
                        ),
                        req_size=cfg.token_msg_bytes * len(batch),
                        resp_size=cfg.token_msg_bytes,
                    )
            except Exception as exc:  # pragma: no cover - propagate to waiters
                for key, _mode, done in batch:
                    self._forget_inflight(key, done)
                    if not done.triggered:
                        done.fail(exc)
                continue
            for key, _mode, done in batch:
                self._forget_inflight(key, done)
                if not done.triggered:
                    done.succeed()

    def _forget_inflight(self, key, done):
        waiting = self._inflight_acquires.get(key)
        if waiting and done in waiting:
            waiting.remove(done)
            if not waiting:
                del self._inflight_acquires[key]

    # -- voluntary release --------------------------------------------------------

    def _queue_relinquish(self, key):
        self._relinquish.append(key)
        if len(self._relinquish) >= self.config.relinquish_batch:
            batch, self._relinquish = self._relinquish, []
            self.sim.process(
                self._send_relinquish(batch),
                name=f"tok-relinquish:{self.machine.name}",
            )

    def _send_relinquish(self, keys):
        yield from self.machine.call(
            self.server_machine, "tokmgr", "release",
            args=(self.machine.name, keys),
            req_size=self.config.token_msg_bytes * len(keys) // 4,
            resp_size=self.config.token_msg_bytes,
        )

    def drop_local(self, key):
        """Forget a token without server interaction (object destroyed)."""
        entry = self._cache_for(key).pop(key)
        if entry is not None and entry.on_drop is not None:
            entry.on_drop(entry)

    # -- revocation service (called by the token server) -----------------------------

    def revoke(self, key, downgrade_to):
        """RPC handler: give up (or downgrade) the token for ``key``.

        Revocations at one node are served one at a time (the daemon's
        revocation thread): under parallel access this queue is a large part
        of the per-operation times in the paper's Figs. 2 and 5.
        """
        self.revokes_served += 1
        cache = self._cache_for(key)
        entry = cache.peek(key)
        if entry is None or entry.revoking:
            # Already evicted/relinquished/being handled; stale server map.
            yield from self.machine.compute(self.config.revoke_cpu_ms / 2)
            return "not-held"
        entry.revoking = True
        with self._revoke_service.request() as claim:
            yield claim
            while entry.pins > 0:
                gate = self.sim.event()
                entry._waiters.append(gate)
                yield gate
            yield from self.machine.compute(self.config.revoke_cpu_ms)
            if entry.dirty and entry.flush_cb is not None:
                self.flushes += 1
                yield from entry.flush_cb()
                entry.dirty = False
            if downgrade_to is None:
                if cache.peek(key) is entry:
                    cache.pop(key)
                if entry.on_drop is not None:
                    entry.on_drop(entry)
                return "dropped"
            entry.mode = downgrade_to
            entry.revoking = False
            return "downgraded"
