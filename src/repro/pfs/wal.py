"""Client-side view of the write-ahead log.

GPFS gives every node its own recovery log, but the log lives on the shared
disks — so a log force is a network round trip to an NSD server plus a
journal write there.  :class:`ClientWal` batches concurrent forces from the
same node into one round trip (its own group commit) and the server-side
:class:`~repro.cluster.disk.GroupCommitLog` batches what arrives together;
different nodes' forces contend on the NSD log disks, which is one of the
queueing effects behind the paper's node-count scaling.
"""


class ClientWal:
    """One node's write-ahead log handle (log storage lives on an NSD)."""

    def __init__(self, machine, nsd_machine, config):
        self.machine = machine
        self.sim = machine.sim
        self.nsd_machine = nsd_machine
        self.config = config
        self._waiters = []
        self._wake = None  # parked pump's wake-up gate
        self._pump_started = False
        self.forces = 0

    def force(self):
        """Return once the node's log is durable (``yield from`` the result).

        Returns a bare one-event tuple — the waiter joins the running pump's
        next batch without a generator frame of its own.  The pump is one
        long-lived process parked on a gate between bursts, not a process
        spawned per burst.
        """
        done = self.sim.event()
        self._waiters.append(done)
        wake = self._wake
        if wake is not None:
            self._wake = None
            wake.succeed()
        elif not self._pump_started:
            self._pump_started = True
            self.sim.process(self._pump(), name=f"wal:{self.machine.name}")
        return (done,)

    def _pump(self):
        group_max = self.config.log_group_max
        while True:
            while self._waiters:
                batch = self._waiters[:group_max]
                del self._waiters[: len(batch)]
                self.forces += 1
                yield from self.machine.call(
                    self.nsd_machine, "nsd", "log_force",
                    args=(self.machine.name, len(batch)),
                    req_size=512 * len(batch), resp_size=128,
                )
                for done in batch:
                    done.succeed()
            gate = self.sim.event()
            self._wake = gate
            yield gate
