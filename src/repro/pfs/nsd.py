"""NSD (network shared disk) servers.

The paper's testbed has two Intel storage servers on 1 Gb links.  Each NSD
server here owns a metadata disk, a data disk and a log-disk region, plus
small buffer caches for inode blocks and directory blocks.  Clients read and
write filesystem structures *through* these servers (shared-disk
architecture): the authoritative structures live in shared memory objects,
and the NSD charges the time a real disk/server would take — including the
buffer-cache thrashing that makes large-directory stats disk-bound (the
convergence plateau of Fig. 5).
"""

from repro.cluster.disk import Disk, GroupCommitLog
from repro.pfs.cache import LruDict


class NsdServer:
    """One storage server: disks, caches and their RPC service."""

    def __init__(self, machine, state, config):
        self.machine = machine
        self.sim = machine.sim
        self.state = state
        self.config = config
        self.meta_disk = Disk(
            self.sim, f"{machine.name}:meta",
            seek_ms=config.meta_disk_seek_ms, bandwidth=config.meta_disk_bw,
        )
        self.data_disk = Disk(
            self.sim, f"{machine.name}:data",
            seek_ms=config.data_disk_seek_ms, bandwidth=config.data_disk_bw,
        )
        self.log_disk = Disk(
            self.sim, f"{machine.name}:log",
            seek_ms=0.0, bandwidth=config.meta_disk_bw,
        )
        machine.add_disk("meta", self.meta_disk)
        machine.add_disk("data", self.data_disk)
        machine.add_disk("log", self.log_disk)
        self._inode_cache = LruDict(config.nsd_inode_cache_blocks)
        self._dirblock_cache = LruDict(config.nsd_dirblock_cache_blocks)
        self._client_logs = {}

    # -- write-ahead logs -------------------------------------------------------

    def client_log(self, client_name):
        """The (server-side) group-commit log of one client node."""
        log = self._client_logs.get(client_name)
        if log is None:
            log = GroupCommitLog(
                self.sim, self.log_disk,
                force_ms=self.config.log_force_ms,
                per_member_ms=self.config.log_per_member_ms,
                group_max=self.config.log_group_max,
            )
            self._client_logs[client_name] = log
        return log

    def log_force(self, client_name, records=1):
        """RPC handler: force ``client_name``'s log (group-committed)."""
        yield from self.client_log(client_name).force()
        return True

    # -- inode attribute blocks ----------------------------------------------------

    def fetch_attr_block(self, block_id):
        """RPC handler: all live attrs packed in inode block ``block_id``.

        A cache miss reads the block from the metadata disk.
        """
        yield from self.machine.compute(self.config.nsd_cpu_ms)
        if self._inode_cache.get(block_id) is None:
            yield from self.meta_disk.read(self.config.meta_block_bytes)
            self._inode_cache.put(block_id, True)
        attrs = {}
        for ino in self.state.inodes.inos_in_block(block_id):
            inode = self.state.inodes.get(ino)
            if inode is not None:
                attrs[ino] = inode.attr()
        return attrs

    def put_attr(self, ino):
        """RPC handler: attribute write-back for ``ino``.

        The inode block is written through to the metadata disk — in the
        shared-disk design the requester of a stolen token reads the inode
        from storage, so the holder's flush must reach it.  The server keeps
        the fresh block cached.
        """
        yield from self.machine.compute(self.config.nsd_cpu_ms / 2)
        yield from self.meta_disk.write(self.config.meta_block_bytes)
        self._inode_cache.put(self.state.inodes.block_of(ino), True)
        return True

    # -- directory blocks -------------------------------------------------------------

    def fetch_dir_block(self, dir_ino, block_id):
        """RPC handler: charge for reading one directory block."""
        yield from self.machine.compute(self.config.nsd_cpu_ms)
        key = (dir_ino, block_id)
        if self._dirblock_cache.get(key) is None:
            yield from self.meta_disk.read(self.config.meta_block_bytes)
            self._dirblock_cache.put(key, True)
        return True

    def put_dir_block(self, dir_ino, block_id):
        """RPC handler: write back one dirty directory block."""
        yield from self.machine.compute(self.config.nsd_cpu_ms / 2)
        yield from self.meta_disk.write(self.config.meta_block_bytes)
        self._dirblock_cache.put((dir_ino, block_id), True)
        return True

    def invalidate_dir(self, dir_ino):
        """Drop cached blocks of a destroyed directory (local bookkeeping)."""
        for key in self._dirblock_cache.keys():
            if key[0] == dir_ino:
                self._dirblock_cache.pop(key)

    # -- data chunks ------------------------------------------------------------------

    def read_chunk(self, ino, chunk_index, size):
        """RPC handler: read a data chunk from the data disk."""
        yield from self.machine.compute(self.config.nsd_cpu_ms / 2)
        yield from self.data_disk.read(size)
        return size

    def write_chunk(self, ino, chunk_index, size):
        """RPC handler: write a data chunk to the data disk."""
        yield from self.machine.compute(self.config.nsd_cpu_ms / 2)
        yield from self.data_disk.write(size, sequential=True)
        return size
