"""A GPFS-like shared-disk parallel file system, simulated.

This package is the substrate the paper measures against: a POSIX-ish
cluster file system in the style of GPFS v3.1 (Schmuck & Haskin, FAST'02)
with the mechanisms the paper identifies as the source of metadata
bottlenecks:

- **shared-disk architecture** — clients read and write metadata structures
  directly on network storage devices (NSD servers) under token protection;
- **distributed token manager** — read-only/exclusive tokens per object with
  revocation round-trips and dirty-state flushes at the holder;
- **packed per-directory metadata** — directory entries live in
  extendible-hash blocks, inode attributes in shared inode blocks, so
  unrelated files in one directory share locking and caching granules;
- **client caching with delegation** — attribute tokens and directory blocks
  are cached per node (bounded LRU, 1024 entries by default), giving the
  near-local performance below the cache cliff seen in the paper's Fig. 1;
- **write-behind data path** — a per-client page pool with background
  flushing, byte-range tokens and sequential prefetch.

Public entry point: :class:`~repro.pfs.filesystem.Pfs` builds the file system
over a testbed; :meth:`~repro.pfs.filesystem.Pfs.client` returns the per-node
VFS (create/open/read/write/stat/...) used by workloads, by the FUSE layer
and by COFS.
"""

from repro.pfs.config import PfsConfig
from repro.pfs.errors import FsError
from repro.pfs.filesystem import Pfs
from repro.pfs.types import FileAttr, OpenFlags

__all__ = ["FileAttr", "FsError", "OpenFlags", "Pfs", "PfsConfig"]
