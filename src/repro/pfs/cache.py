"""Bounded LRU containers used by client and server caches."""

from collections import OrderedDict


class LruDict:
    """An LRU-evicting dict with optional eviction veto (pinned entries).

    ``put`` returns the list of (key, value) pairs evicted to make room.
    Entries for which ``pinned(value)`` is true are skipped during eviction
    scans; if everything is pinned the cache is allowed to overflow rather
    than deadlock.
    """

    def __init__(self, capacity, pinned=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._pinned = pinned or (lambda value: False)
        self._data = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    _MISSING = object()

    def get(self, key, touch=True):
        """The value for ``key`` (refreshing recency), or None."""
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._data.move_to_end(key)
        return value

    def peek(self, key):
        """The value for ``key`` without recency or stats effects."""
        return self._data.get(key)

    def put(self, key, value):
        """Insert/overwrite ``key``; returns evicted (key, value) pairs."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return []
        data[key] = value
        excess = len(data) - self.capacity
        if excess <= 0:
            return []
        # Collect the oldest unpinned victims without copying the whole key
        # list (the common case stops at the LRU head).
        pinned = self._pinned
        victims = []
        for candidate in data:
            if candidate == key or pinned(data[candidate]):
                continue
            victims.append(candidate)
            if len(victims) >= excess:
                break
        evicted = [(candidate, data.pop(candidate)) for candidate in victims]
        self.evictions += len(evicted)
        return evicted

    def pop(self, key):
        """Remove and return the value for ``key`` (None if absent)."""
        return self._data.pop(key, None)

    def keys(self):
        return list(self._data.keys())

    def values(self):
        return list(self._data.values())

    def items(self):
        return list(self._data.items())

    def clear(self):
        self._data.clear()
