"""Cluster-wide wiring of the parallel file system.

:class:`Pfs` owns the shared-disk state (inode table, root directory), runs
the token and range-token managers on the first server machine, an NSD
service on every server machine, and hands out per-node
:class:`~repro.pfs.client.PfsClient` mounts.
"""

import zlib

from repro.pfs.client import PfsClient
from repro.pfs.config import PfsConfig
from repro.pfs.inode import InodeTable
from repro.pfs.nsd import NsdServer
from repro.pfs.ranges import RangeTokenServer
from repro.pfs.tokens import TokenServer
from repro.pfs.types import DIRECTORY


class PfsState:
    """The authoritative shared-disk structures."""

    def __init__(self, config):
        self.inodes = InodeTable(
            pack=config.inode_pack,
            dir_block_capacity=config.dir_block_capacity,
        )
        root = self.inodes.allocate(DIRECTORY, 0o755, 0, 0, 0.0, "boot")
        self.root_ino = root.ino
        self.parents = {self.root_ino: self.root_ino}


class Pfs:
    """A mounted parallel file system across a testbed."""

    def __init__(self, sim, server_machines, config=None, name="pfs"):
        if not server_machines:
            raise ValueError("at least one server machine is required")
        self.sim = sim
        self.name = name
        self.config = config or PfsConfig()
        self.state = PfsState(self.config)
        self.server_machines = list(server_machines)
        self.token_machine = self.server_machines[0]
        self.range_machine = self.server_machines[0]
        self.token_server = TokenServer(
            self.token_machine, self.config, state=self.state
        )
        self.token_machine.register("tokmgr", self.token_server)
        self.range_server = RangeTokenServer(self.range_machine, self.config)
        self.range_machine.register("rangemgr", self.range_server)
        self.nsds = [
            NsdServer(machine, self.state, self.config)
            for machine in self.server_machines
        ]
        for nsd in self.nsds:
            nsd.machine.register("nsd", nsd)
        self.clients = {}

    # -- clients ---------------------------------------------------------------

    def client(self, machine, uid=0, gid=0):
        """Mount the filesystem on ``machine`` and return the client."""
        if machine.name in self.clients:
            raise ValueError(f"{machine.name} already has a {self.name} mount")
        client = PfsClient(self, machine, uid=uid, gid=gid)
        self.clients[machine.name] = client
        return client

    # -- placement of objects on servers ------------------------------------------

    def _server_index(self, value):
        return value % len(self.nsds)

    def nsd_for_inode_block(self, block_id):
        """The NSD machine serving a given inode block."""
        return self.nsds[self._server_index(block_id)].machine

    def nsd_for_inode(self, ino):
        return self.nsd_for_inode_block(self.state.inodes.block_of(ino))

    def nsd_for_dirblock(self, dir_ino, block_id):
        return self.nsds[self._server_index(dir_ino + block_id)].machine

    def nsd_for_chunk(self, ino, chunk_index):
        return self.nsds[self._server_index(ino + chunk_index)].machine

    def nsd_for_log(self, client_name):
        """The NSD holding one client's recovery log (stable by name)."""
        return self.nsds[self._server_index(zlib.crc32(client_name.encode()))].machine

    # -- diagnostics -------------------------------------------------------------------

    def counters(self):
        """A flat dict of interesting counters for reports and tests."""
        out = {
            "token_acquires": self.token_server.acquires,
            "token_revocations": self.token_server.revocations,
            "range_acquires": self.range_server.acquires,
            "range_revokes": self.range_server.range_revokes,
        }
        for nsd in self.nsds:
            prefix = nsd.machine.name
            out[f"{prefix}.meta_reads"] = nsd.meta_disk.reads
            out[f"{prefix}.meta_writes"] = nsd.meta_disk.writes
            out[f"{prefix}.data_reads"] = nsd.data_disk.reads
            out[f"{prefix}.data_writes"] = nsd.data_disk.writes
            out[f"{prefix}.log_writes"] = nsd.log_disk.writes
        return out
