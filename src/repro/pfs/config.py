"""Calibration constants for the GPFS-like file system.

Every timing constant in the parallel-FS model lives here, with the paper
anchor it was calibrated against (section II/IV of the paper).  The *shape*
of every reproduced figure emerges from the simulated mechanisms (token
revocation queueing, cache cliffs, log contention); these constants only pin
the absolute scale to the paper's testbed (IBM JS20 blades, 1 GbE, GPFS 3.1,
two Intel storage servers).
"""

from dataclasses import dataclass

from repro.units import MB, mb_per_s


@dataclass
class PfsConfig:
    """Tunables of the parallel file system model."""

    # ---- structure ---------------------------------------------------------
    #: inodes packed per on-disk inode block (the fetch/cache granule; the
    #: paper's "management information packed together").
    inode_pack: int = 32
    #: directory entries per extendible-hash block.
    dir_block_capacity: int = 64

    # ---- client caches ------------------------------------------------------
    #: per-node attribute-token cache capacity.  The paper's Fig. 1 shows
    #: stat/utime/open dropping to network rates beyond ~1024 entries per
    #: directory: this is that cliff.
    attr_cache_entries: int = 1024
    #: per-node directory-block cache capacity, counted in *entries*
    #: (capacity in blocks = entries / dir_block_capacity).
    dirblock_cache_entries: int = 1024
    #: per-node cache of directory tokens (distinct directories in use).
    dir_token_entries: int = 128
    #: voluntary token releases are batched to the server in groups.
    relinquish_batch: int = 64
    #: page pool (data cache) per node.  GPFS 3.1 default was 64 MB, which is
    #: what makes Table I's "<32 MB per node stays cached" boundary work.
    page_pool_bytes: int = 64 * MB
    #: data cache / transfer chunk.
    chunk_bytes: int = 1 * MB
    #: sequential read-ahead depth, in chunks.
    prefetch_depth: int = 4

    # ---- client CPU costs (ms) ------------------------------------------------
    #: local bookkeeping per VFS operation.
    client_op_cpu_ms: float = 0.02
    #: hashing + block edit work per directory insert/remove.
    dir_insert_cpu_ms: float = 0.25
    #: extra per-create cost per extendible-hash depth level beyond
    #: `dir_depth_free` — directory maintenance (splits, deeper hash tree,
    #: wider writeback set) past the in-cache regime.  Drives the steady
    #: create-time increase above ~512 entries in Fig. 1.
    dir_depth_cost_ms: float = 0.9
    #: depth reached at ~512 entries with 64-entry blocks; no charge below.
    dir_depth_free: int = 3
    #: the depth charge saturates (very large directories don't keep getting
    #: linearly worse per create — matching Fig. 4's weak dependence on the
    #: number of files).
    dir_depth_cap_levels: int = 3
    #: holder-side processing per revocation.
    revoke_cpu_ms: float = 0.15
    #: memory copy bandwidth for cache hits (bytes/ms).
    mem_copy_bw: float = mb_per_s(2400)

    # ---- token server ------------------------------------------------------------
    #: token-server CPU per acquire/release.
    token_server_cpu_ms: float = 0.15
    #: marginal CPU per extra item in a batched token request.
    token_batch_item_cpu_ms: float = 0.05
    #: token protocol message size (bytes).
    token_msg_bytes: int = 256

    # ---- NSD (storage) servers ------------------------------------------------------
    #: NSD CPU per metadata fetch/update RPC.
    nsd_cpu_ms: float = 0.35
    #: NSD buffer cache for inode blocks (blocks of `inode_pack` inodes).
    #: 32 blocks = 1024 inodes: beyond that, parallel stats converge to
    #: disk-bound fetches (the Fig. 5 convergence plateau).
    nsd_inode_cache_blocks: int = 32
    #: NSD buffer cache for directory blocks.
    nsd_dirblock_cache_blocks: int = 256
    #: metadata disk: positioning + transfer.
    meta_disk_seek_ms: float = 1.5
    meta_disk_bw: float = mb_per_s(60)
    #: data disks (per NSD server): fast enough that 1 GbE links, not disks,
    #: bound streaming transfers — as on the paper's testbed.
    data_disk_seek_ms: float = 1.2
    data_disk_bw: float = mb_per_s(160)
    #: metadata block size for disk transfer accounting.
    meta_block_bytes: int = 16 * 1024

    # ---- write-ahead log (per client, on NSD log disks) ------------------------------
    #: device time per log force (journal write + controller sync).  With
    #: the RPC round trip this makes a solo create land near the paper's
    #: "slightly less than 2 ms".
    log_force_ms: float = 1.1
    #: marginal device time per extra transaction in a batched force.
    log_per_member_ms: float = 0.05
    #: group-commit batch bound.
    log_group_max: int = 8

    # ---- data path -------------------------------------------------------------------
    #: close() waits for write-behind to drain (IOR-visible bandwidth).
    fsync_on_close: bool = True

    # ---- derived -----------------------------------------------------------------------
    @property
    def dirblock_cache_blocks(self):
        """Client dir-block cache capacity in blocks."""
        return max(1, self.dirblock_cache_entries // self.dir_block_capacity)

    def replace(self, **overrides):
        """A copy of this config with ``overrides`` applied."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)
