"""FUSE mount: per-request crossing costs, double copies, MTU chunking."""

from dataclasses import dataclass

from repro.pfs.vfs import FileSystemApi
from repro.units import mb_per_s


@dataclass
class FuseConfig:
    """Cost model of the FUSE kernel/userspace boundary (2010-era libfuse).

    ``crossing_ms`` is charged per request in each direction (context
    switches, request queueing); ``copy_bw`` models the extra buffer copy a
    FUSE daemon pays on data (once per direction); ``max_transfer`` splits
    big reads/writes into separate requests, each paying the crossing.
    """

    crossing_ms: float = 0.018
    copy_bw: float = mb_per_s(2200)
    max_transfer: int = 128 * 1024
    #: metadata replies are small; no copy charge, just the crossings.


class FuseMount(FileSystemApi):
    """A FUSE-mounted view of another filesystem."""

    def __init__(self, machine, backend, config=None):
        self.machine = machine
        self.sim = machine.sim
        self.backend = backend
        self.config = config or FuseConfig()
        self.requests = 0

    def _cross(self):
        """One kernel->user->kernel round trip of request handling."""
        self.requests += 1
        return self.machine.compute(2 * self.config.crossing_ms)

    def _copy(self, nbytes):
        return self.machine.compute(nbytes / self.config.copy_bw)

    # -- metadata: one crossing per request ------------------------------------

    def mkdir(self, path, mode=0o755):
        yield from self._cross()
        result = yield from self.backend.mkdir(path, mode)
        return result

    def rmdir(self, path):
        yield from self._cross()
        result = yield from self.backend.rmdir(path)
        return result

    def create(self, path, mode=0o644):
        yield from self._cross()
        result = yield from self.backend.create(path, mode)
        return result

    def mknod(self, path, mode=0o644):
        yield from self._cross()
        result = yield from self.backend.mknod(path, mode)
        return result

    def open(self, path, flags=0):
        yield from self._cross()
        result = yield from self.backend.open(path, flags)
        return result

    def close(self, handle):
        yield from self._cross()
        result = yield from self.backend.close(handle)
        return result

    def unlink(self, path):
        yield from self._cross()
        result = yield from self.backend.unlink(path)
        return result

    def stat(self, path):
        yield from self._cross()
        result = yield from self.backend.stat(path)
        return result

    def utime(self, path, atime=None, mtime=None):
        yield from self._cross()
        result = yield from self.backend.utime(path, atime, mtime)
        return result

    def chmod(self, path, mode):
        yield from self._cross()
        result = yield from self.backend.chmod(path, mode)
        return result

    def chown(self, path, uid, gid):
        yield from self._cross()
        result = yield from self.backend.chown(path, uid, gid)
        return result

    def statfs(self):
        yield from self._cross()
        result = yield from self.backend.statfs()
        return result

    def readdir(self, path):
        yield from self._cross()
        names = yield from self.backend.readdir(path)
        # Directory listings stream back in page-sized replies.
        yield from self._copy(64 * max(1, len(names)))
        return names

    def rename(self, old, new):
        yield from self._cross()
        result = yield from self.backend.rename(old, new)
        return result

    def link(self, src, dst):
        yield from self._cross()
        result = yield from self.backend.link(src, dst)
        return result

    def symlink(self, target, path):
        yield from self._cross()
        result = yield from self.backend.symlink(target, path)
        return result

    def readlink(self, path):
        yield from self._cross()
        result = yield from self.backend.readlink(path)
        return result

    def fsync(self, handle):
        yield from self._cross()
        result = yield from self.backend.fsync(handle)
        return result

    def truncate(self, path, size):
        yield from self._cross()
        result = yield from self.backend.truncate(path, size)
        return result

    # -- data: chunked into MTU requests, copied twice ---------------------------

    def read(self, handle, offset, size, want_data=False):
        mtu = self.config.max_transfer
        done = 0
        chunks = []
        while done < size:
            span = min(mtu, size - done)
            yield from self._cross()
            got = yield from self.backend.read(
                handle, offset + done, span, want_data=want_data
            )
            yield from self._copy(span)
            if want_data:
                chunks.append(got)
                if len(got) < span:
                    done += span
                    break
            done += span
        if want_data:
            return b"".join(chunks)
        return min(done, size)

    def write(self, handle, offset, size=None, data=None):
        if (size is None) == (data is None):
            raise ValueError("write() needs exactly one of size= or data=")
        total = size if size is not None else len(data)
        mtu = self.config.max_transfer
        done = 0
        written = 0
        while done < total:
            span = min(mtu, total - done)
            yield from self._cross()
            yield from self._copy(span)
            if data is not None:
                written += yield from self.backend.write(
                    handle, offset + done, data=data[done: done + span]
                )
            else:
                written += yield from self.backend.write(
                    handle, offset + done, size=span
                )
            done += span
        return written
