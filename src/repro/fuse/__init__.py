"""The FUSE (Filesystem in USErspace) interposition layer.

COFS is implemented as a user-level FUSE daemon (paper §III).  FUSE costs
real time: every VFS request crosses kernel→user and back, and data moves
through an extra buffer copy in each direction; large transfers are split
into maximum-transfer-unit requests.  :class:`FuseMount` wraps any
:class:`~repro.pfs.vfs.FileSystemApi` implementation and charges exactly
those costs — so the COFS results carry the overhead the paper's prototype
paid, and the Table I "small cached file" slowdowns emerge.
"""

from repro.fuse.mount import FuseConfig, FuseMount

__all__ = ["FuseConfig", "FuseMount"]
