"""Analysis helpers for experiment series.

Small, dependency-light utilities used by the benchmark shape assertions and
by EXPERIMENTS.md generation: cliff detection (Fig 1), plateau estimation
(Fig 5's convergence), crossover location, speedup tables and scaling fits
(create time vs node count).
"""

from repro.analysis.series import (
    crossover,
    find_cliff,
    linear_fit,
    monotone,
    plateau,
    scaling_exponent,
    speedup_series,
)

__all__ = [
    "crossover",
    "find_cliff",
    "linear_fit",
    "monotone",
    "plateau",
    "scaling_exponent",
    "speedup_series",
]
