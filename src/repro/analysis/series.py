"""Series utilities: cliffs, plateaus, crossovers, fits."""

import math


def _sorted_points(points):
    pts = sorted((float(x), float(y)) for x, y in points)
    if not pts:
        raise ValueError("empty series")
    return pts


def find_cliff(points, factor=3.0):
    """The first x where y jumps by ``factor`` over the previous point.

    Returns None when the series never jumps.  Used to locate the paper's
    1024-entry cache cliff in Fig. 1-style sweeps.
    """
    pts = _sorted_points(points)
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        if y0 > 0 and y1 / y0 >= factor:
            return x1
    return None


def plateau(points, tail=3):
    """The mean of the last ``tail`` y-values (the convergence level)."""
    pts = _sorted_points(points)
    tail_points = pts[-tail:]
    return sum(y for _x, y in tail_points) / len(tail_points)


def crossover(series_a, series_b):
    """The first shared x where series A stops being below series B.

    Returns None if the ordering never flips over the shared domain.
    """
    a = dict(_sorted_points(series_a))
    b = dict(_sorted_points(series_b))
    shared = sorted(set(a) & set(b))
    if not shared:
        raise ValueError("series share no x values")
    below = a[shared[0]] < b[shared[0]]
    for x in shared[1:]:
        if (a[x] < b[x]) != below:
            return x
    return None


def speedup_series(baseline, improved):
    """Per-x speedups baseline/improved over the shared domain."""
    base = dict(_sorted_points(baseline))
    imp = dict(_sorted_points(improved))
    shared = sorted(set(base) & set(imp))
    if not shared:
        raise ValueError("series share no x values")
    return [(x, base[x] / imp[x] if imp[x] > 0 else math.inf)
            for x in shared]


def monotone(points, direction="increasing", tolerance=0.0):
    """True if the series is monotone within a relative ``tolerance``."""
    pts = _sorted_points(points)
    for (_x0, y0), (_x1, y1) in zip(pts, pts[1:]):
        slack = abs(y0) * tolerance
        if direction == "increasing" and y1 < y0 - slack:
            return False
        if direction == "decreasing" and y1 > y0 + slack:
            return False
    return True


def linear_fit(points):
    """Least-squares line fit; returns (slope, intercept, r_squared)."""
    pts = _sorted_points(points)
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(x for x, _y in pts) / n
    mean_y = sum(y for _x, y in pts) / n
    sxx = sum((x - mean_x) ** 2 for x, _y in pts)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in pts)
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for _x, y in pts)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in pts)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r_squared


def scaling_exponent(points):
    """The log-log slope: y ~ x**k.  k≈1 is linear scaling, k≈0 flat."""
    pts = _sorted_points(points)
    logpts = [(math.log(x), math.log(y)) for x, y in pts if x > 0 and y > 0]
    if len(logpts) < 2:
        raise ValueError("need two positive points")
    slope, _intercept, _r2 = linear_fit(logpts)
    return slope
