"""Cluster substrate: machines with CPUs, disks and registered services.

A :class:`Machine` is a blade or server in the simulated testbed: it owns CPU
slots (for explicit compute charging), optional local disks, and a registry
of named services whose coroutine methods are the targets of network RPCs.
:class:`Disk` models seek + transfer costs; :class:`GroupCommitLog` models a
write-ahead log whose forces batch concurrent committers (the group-commit
behaviour that shapes parallel create times in the paper's experiments).
"""

from repro.cluster.disk import Disk, GroupCommitLog
from repro.cluster.machine import Machine

__all__ = ["Disk", "GroupCommitLog", "Machine"]
