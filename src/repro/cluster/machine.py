"""Simulated machines (blades, file servers, the metadata-service node)."""

from repro.net.transport import RemoteError
from repro.sim.resources import Resource


class Machine:
    """A computing element attached to the topology.

    - ``cpu`` is a :class:`Resource` with one slot per core; services charge
      compute with :meth:`compute`.
    - ``services`` maps a name to any object whose coroutine methods handle
      RPCs (see :meth:`repro.net.transport.Network.rpc`).
    - ``disks`` holds named local :class:`~repro.cluster.disk.Disk` objects.
    """

    def __init__(self, sim, network, host, cpus=2, name=None):
        self.sim = sim
        self.network = network
        self.host = host
        self.name = name or host
        self.cpu = Resource(sim, capacity=cpus)
        self.services = {}
        self.disks = {}

    def __repr__(self):
        return f"<Machine {self.name}>"

    # -- service registry -----------------------------------------------------

    def register(self, name, service):
        """Expose ``service`` under ``name`` for incoming RPCs."""
        if name in self.services:
            raise ValueError(f"machine {self.name}: duplicate service {name!r}")
        self.services[name] = service
        return service

    def handler(self, service, method):
        """Resolve the coroutine handler for ``service.method``."""
        svc = self.services.get(service)
        if svc is None:
            raise RemoteError(f"machine {self.name}: no service {service!r}")
        handler = getattr(svc, method, None)
        if handler is None or not callable(handler):
            raise RemoteError(
                f"machine {self.name}: service {service!r} has no method {method!r}"
            )
        return handler

    # -- local hardware ---------------------------------------------------------

    def add_disk(self, name, disk):
        """Attach a local disk under ``name``."""
        if name in self.disks:
            raise ValueError(f"machine {self.name}: duplicate disk {name!r}")
        self.disks[name] = disk
        return disk

    #: computes below this duration on an idle CPU skip queue bookkeeping
    #: (they model fixed op overheads, not contended service times).
    FAST_COMPUTE_MS = 0.2

    def compute(self, duration):
        """Coroutine: occupy one CPU slot for ``duration`` ms (FIFO queued)."""
        if duration <= 0:
            return
        if (
            duration < self.FAST_COMPUTE_MS
            and len(self.cpu.users) < self.cpu.capacity
            and not self.cpu.queue
        ):
            yield self.sim.timeout(duration)
            return
        with self.cpu.request() as claim:
            yield claim
            yield self.sim.timeout(duration)

    # -- communication ----------------------------------------------------------

    def call(self, dst, service, method, args=(), kwargs=None,
             req_size=512, resp_size=512):
        """Coroutine: RPC from this machine to ``dst`` (zero-cost if local)."""
        return self.network.rpc(
            self, dst, service, method, args=args, kwargs=kwargs,
            req_size=req_size, resp_size=resp_size,
        )
