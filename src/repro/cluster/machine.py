"""Simulated machines (blades, file servers, the metadata-service node)."""

from repro.net.transport import RemoteError
from repro.sim.resources import Resource


class Machine:
    """A computing element attached to the topology.

    - ``cpu`` is a :class:`Resource` with one slot per core; services charge
      compute with :meth:`compute`.
    - ``services`` maps a name to any object whose coroutine methods handle
      RPCs (see :meth:`repro.net.transport.Network.rpc`).
    - ``disks`` holds named local :class:`~repro.cluster.disk.Disk` objects.
    """

    def __init__(self, sim, network, host, cpus=2, name=None):
        self.sim = sim
        self.network = network
        self.host = host
        self.name = name or host
        self.cpu = Resource(sim, capacity=cpus)
        self.services = {}
        self.disks = {}
        self._handler_cache = {}  # (service, method) -> bound handler

    def __repr__(self):
        return f"<Machine {self.name}>"

    # -- service registry -----------------------------------------------------

    def register(self, name, service):
        """Expose ``service`` under ``name`` for incoming RPCs."""
        if name in self.services:
            raise ValueError(f"machine {self.name}: duplicate service {name!r}")
        self.services[name] = service
        self._handler_cache.clear()
        return service

    def handler(self, service, method):
        """Resolve the coroutine handler for ``service.method`` (cached)."""
        key = (service, method)
        handler = self._handler_cache.get(key)
        if handler is not None:
            return handler
        svc = self.services.get(service)
        if svc is None:
            raise RemoteError(f"machine {self.name}: no service {service!r}")
        handler = getattr(svc, method, None)
        if handler is None or not callable(handler):
            raise RemoteError(
                f"machine {self.name}: service {service!r} has no method {method!r}"
            )
        self._handler_cache[key] = handler
        return handler

    # -- local hardware ---------------------------------------------------------

    def add_disk(self, name, disk):
        """Attach a local disk under ``name``."""
        if name in self.disks:
            raise ValueError(f"machine {self.name}: duplicate disk {name!r}")
        self.disks[name] = disk
        return disk

    #: computes below this duration on an idle CPU skip queue bookkeeping
    #: (they model fixed op overheads, not contended service times).
    FAST_COMPUTE_MS = 0.2

    def compute(self, duration):
        """Occupy one CPU slot for ``duration`` ms (``yield from`` the result).

        Sub-threshold durations on an idle CPU return a bare one-event tuple
        (no generator frame); contended or long computes queue FIFO.
        """
        if duration <= 0:
            return ()
        cpu = self.cpu
        if (
            duration < self.FAST_COMPUTE_MS
            and len(cpu.users) < cpu.capacity
            and not cpu.queue
        ):
            return (self.sim.timeout(duration),)
        return self._compute_queued(duration)

    def _compute_queued(self, duration):
        """Coroutine: the FIFO-queued compute path."""
        claim = self.cpu.request_nowait()
        if claim is None:
            claim = self.cpu.request()
            yield claim
        try:
            yield self.sim.timeout(duration)
        finally:
            self.cpu.release(claim)

    # -- communication ----------------------------------------------------------

    def call(self, dst, service, method, args=(), kwargs=None,
             req_size=512, resp_size=512):
        """Coroutine: RPC from this machine to ``dst`` (zero-cost if local)."""
        return self.network.rpc(
            self, dst, service, method, args, kwargs, req_size, resp_size,
        )
