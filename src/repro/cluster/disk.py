"""Disk and write-ahead-log timing models.

The disk model is deliberately simple — a FIFO device with positioning cost
plus transfer time — because the paper's phenomena live in *queueing* on these
devices, not in their internal geometry.  :class:`GroupCommitLog` captures the
one log behaviour that matters at scale: concurrent committers share a single
force (batch commit), which caps the per-operation log cost as load grows.
"""

from repro.sim.resources import Resource


class Disk:
    """A FIFO block device.

    ``seek_ms`` is charged per random I/O, ``bandwidth`` (bytes/ms) for the
    transfer, and sequential I/O skips the positioning cost.
    """

    def __init__(self, sim, name, seek_ms, bandwidth):
        self.sim = sim
        self.name = name
        self.seek_ms = seek_ms
        self.bandwidth = bandwidth
        self._device = Resource(sim, capacity=1)
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def __repr__(self):
        return f"<Disk {self.name}>"

    def service_time(self, size, sequential=False):
        """Device time for one I/O of ``size`` bytes, without queueing."""
        positioning = 0.0 if sequential else self.seek_ms
        return positioning + size / self.bandwidth

    def read(self, size, sequential=False):
        """Coroutine: read ``size`` bytes (FIFO queued on the device)."""
        yield from self._io(size, sequential)
        self.reads += 1
        self.bytes_read += size

    def write(self, size, sequential=False):
        """Coroutine: write ``size`` bytes (FIFO queued on the device)."""
        yield from self._io(size, sequential)
        self.writes += 1
        self.bytes_written += size

    def _io(self, size, sequential):
        claim = self._device.request_nowait()
        if claim is None:
            claim = self._device.request()
            yield claim
        try:
            yield self.sim.timeout(self.service_time(size, sequential))
        finally:
            self._device.release(claim)

    @property
    def queued(self):
        """I/Os waiting for the device (diagnostics)."""
        return len(self._device.queue)


class GroupCommitLog:
    """A write-ahead log with batched forces.

    ``force()`` guarantees that everything appended so far is durable before
    returning.  While one force is in progress, later callers join the *next*
    batch and share its cost: a batch force costs
    ``force_ms + per_member_ms * batch_size`` on the device, bounded by
    ``group_max`` members per batch.
    """

    def __init__(self, sim, disk, force_ms, per_member_ms=0.0, group_max=8):
        if group_max < 1:
            raise ValueError("group_max must be >= 1")
        self.sim = sim
        self.disk = disk
        self.force_ms = force_ms
        self.per_member_ms = per_member_ms
        self.group_max = group_max
        self._waiters = []
        self._wake = None  # parked flusher's wake-up gate
        self._flusher_started = False
        self._inflight = 0   # members of the batch currently on the device
        self._drainers = []  # events waiting for a fully idle log
        self.forces = 0
        self.commits = 0

    def force(self):
        """Return once the current log contents are durable.

        Returns a bare one-event tuple to ``yield from``; the waiter joins
        the running flusher's next batch without a generator frame.  The
        flusher is one long-lived process parked between bursts.
        """
        done = self.sim.event()
        self._waiters.append(done)
        wake = self._wake
        if wake is not None:
            self._wake = None
            wake.succeed()
        elif not self._flusher_started:
            self._flusher_started = True
            self.sim.process(
                self._flusher(), name=f"log-flusher:{self.disk.name}"
            )
        return (done,)

    def drain(self):
        """Coroutine: wait until every force issued so far has completed.

        The barrier a journal rebuild needs: a force still in flight when
        the rebuild swaps tables would mark records durable against the
        *old* journal tail (see
        :meth:`repro.db.service.DbService.crash_and_recover`).  Forces
        issued *after* drain returns are the caller's responsibility.
        """
        while self._waiters or self._inflight:
            done = self.sim.event()
            self._drainers.append(done)
            yield done

    def _flusher(self):
        while True:
            while self._waiters:
                batch = self._waiters[: self.group_max]
                del self._waiters[: len(batch)]
                self._inflight = len(batch)
                cost = self.force_ms + self.per_member_ms * len(batch)
                size = max(1, len(batch)) * 512  # log records are tiny
                yield from self._device_force(cost, size)
                self.forces += 1
                self.commits += len(batch)
                self._inflight = 0
                for done in batch:
                    done.succeed()
            if self._drainers:
                drainers, self._drainers = self._drainers, []
                for done in drainers:
                    done.succeed()
            gate = self.sim.event()
            self._wake = gate
            yield gate

    def _device_force(self, cost, size):
        device = self.disk._device
        claim = device.request_nowait()
        if claim is None:
            claim = device.request()
            yield claim
        try:
            yield self.sim.timeout(cost)
        finally:
            device.release(claim)
        self.disk.writes += 1
        self.disk.bytes_written += size
