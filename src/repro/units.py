"""Unit conventions and conversion helpers.

The whole reproduction uses a single set of units:

- **time**: milliseconds of virtual time (the paper reports ms/operation),
- **sizes**: bytes,
- **bandwidth**: bytes per millisecond.
"""

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


def gbps(x):
    """Convert gigabits/second to bytes/millisecond (1 Gbps = 125000 B/ms)."""
    return x * 1e9 / 8.0 / 1e3


def mbps(x):
    """Convert megabits/second to bytes/millisecond."""
    return x * 1e6 / 8.0 / 1e3


def mb_per_s(x):
    """Convert megabytes/second to bytes/millisecond."""
    return x * MB / 1e3


def to_mb_per_s(bytes_per_ms):
    """Convert bytes/millisecond back to megabytes/second for reporting."""
    return bytes_per_ms * 1e3 / MB


def seconds(ms):
    """Milliseconds to seconds, for reporting."""
    return ms / 1e3
