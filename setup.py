"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package needed by PEP 660 editable builds)."""

from setuptools import setup

setup()
