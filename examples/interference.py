#!/usr/bin/env python3
"""`ls -l` on a directory that a parallel job is filling right now.

The paper's production motivation (§I): global performance drops traced to
"periods when an application was involved in heavy metadata activity (e.g.
parallel file creation or large directory traversals)".  This example plays
the classic support ticket: six nodes create files in a shared output
directory while a user on another node lists it.  On the bare parallel FS
the listing's read token has to break the creators' exclusive-token chain;
on COFS it is one metadata-service query.

Run:  python examples/interference.py
"""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.workloads.interference import InterferenceConfig, run_interference

NODES = 7  # 1 bystander + 6 aggressors


def main():
    config = InterferenceConfig(storm_nodes=6, storm_files_per_node=192)
    print("node0 runs `ls -l` on /app/output while nodes 1-6 create files "
          "in it\n")

    bare = run_interference(
        PfsStack(build_flat_testbed(n_clients=NODES)), config
    )
    cofs = run_interference(
        CofsStack(build_flat_testbed(n_clients=NODES, with_mds=True)), config
    )

    print(f"{'system':<12}{'quiet':>10}{'stormy':>10}{'slowdown':>10}")
    print("-" * 42)
    print(f"{'pure GPFS':<12}{bare.quiet_ms.mean:>8.2f}ms"
          f"{bare.stormy_ms.mean:>8.2f}ms{bare.slowdown:>9.1f}x")
    print(f"{'COFS':<12}{cofs.quiet_ms.mean:>8.2f}ms"
          f"{cofs.stormy_ms.mean:>8.2f}ms{cofs.slowdown:>9.1f}x")
    print(
        "\nOn the bare parallel FS the listing must pull the directory's\n"
        "read token out of the creators' exclusive-token chain and then\n"
        "revoke per-file attribute tokens from each creator. COFS answers\n"
        "the whole listing from its metadata service."
    )


if __name__ == "__main__":
    main()
