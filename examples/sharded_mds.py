#!/usr/bin/env python3
"""Scale the metadata service itself: one namespace, N metadata shards.

The paper removes the underlying file system's metadata bottleneck by
virtualizing the namespace — but its metadata service is a single node.
This example partitions the COFS namespace across metadata shards
(hash-by-parent-directory, HopsFS-style) and measures a pure-metadata
storm: many clients stat/utime files in their own directories.

Run:  python examples/sharded_mds.py
"""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack
from repro.workloads import MetaratesConfig, run_metarates

NODES = 8
FILES_PER_PROC = 24


def measure(shards):
    stack = CofsStack(build_flat_testbed(n_clients=NODES, with_mds=shards))
    config = MetaratesConfig(
        nodes=NODES, procs_per_node=2, files_per_proc=FILES_PER_PROC,
        ops=("stat", "utime"), private_dirs=True,
    )
    return run_metarates(stack, config)


def main():
    print(f"{NODES} nodes x 2 procs, each stat/utime-ing "
          f"{FILES_PER_PROC} files in a private directory\n")
    print(f"{'shards':<8}{'stat ops/s':>12}{'utime ops/s':>13}")
    print("-" * 33)
    base = None
    for shards in (1, 2, 4):
        res = measure(shards)
        stat_rate = res.rate_per_s("stat")
        if base is None:
            base = stat_rate
        print(f"{shards:<8}{stat_rate:>12.0f}{res.rate_per_s('utime'):>13.0f}"
              f"   ({stat_rate / base:.1f}x stat)")
    print(
        "\nEntries partition by parent directory, so each rank's private\n"
        "directory lands on one shard and the storm spreads across all of\n"
        "them - stats (pure metadata-CPU) scale near-linearly, while\n"
        "utimes are bounded by each shard's group-committed log disk."
    )


if __name__ == "__main__":
    main()
