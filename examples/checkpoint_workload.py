#!/usr/bin/env python3
"""A parallel application checkpointing into a shared directory.

The paper's first motivating workload (§I): every node of a parallel
application dumps its state to a per-node file in a common checkpoint
directory.  The checkpoint round time is bounded by the slowest node, so
serialized creates directly stretch every round.

Run:  python examples/checkpoint_workload.py
"""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.units import MB
from repro.workloads.apps import CheckpointConfig, run_checkpoint

NODES = 8


def main():
    config = CheckpointConfig(
        nodes=NODES, rounds=4, bytes_per_node=4 * MB, compute_ms=250.0
    )
    print(f"{NODES}-node application, {config.rounds} checkpoint rounds, "
          f"{config.bytes_per_node // MB} MB per node per round\n")

    bare = run_checkpoint(
        PfsStack(build_flat_testbed(n_clients=NODES)), config
    )
    cofs = run_checkpoint(
        CofsStack(build_flat_testbed(n_clients=NODES, with_mds=True)), config
    )

    print(f"{'system':<12}{'mean round':>14}{'mean create':>14}")
    print("-" * 40)
    print(f"{'pure GPFS':<12}{bare.mean_round_ms:>12.1f}ms"
          f"{bare.create_ms.mean:>12.2f}ms")
    print(f"{'COFS':<12}{cofs.mean_round_ms:>12.1f}ms"
          f"{cofs.create_ms.mean:>12.2f}ms")
    print(
        f"\nCheckpoint rounds are {bare.mean_round_ms / cofs.mean_round_ms:.1f}x "
        "faster under COFS: the per-node checkpoint files no longer fight\n"
        "over one directory's tokens, so all nodes start writing at once."
    )


if __name__ == "__main__":
    main()
