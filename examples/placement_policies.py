#!/usr/bin/env python3
"""Compare placement policies — where does COFS's win come from?

COFS = interposition + metadata service + placement.  Swapping the
placement policy separates the pieces (paper §III-B notes that "different
mapping policies could be easily implemented"):

- identity    : mirror the user's layout underneath (no reorganization)
- hash        : one underlying directory per (node, parent, process)
- hash+rand   : the paper's policy, with a randomization sublevel

Run:  python examples/placement_policies.py
"""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.core.config import CofsConfig
from repro.core.placement import HashPlacementPolicy, IdentityPlacementPolicy
from repro.workloads import MetaratesConfig, run_metarates

NODES = 4
FILES_PER_NODE = 256


def measure(stack):
    return run_metarates(stack, MetaratesConfig(
        nodes=NODES, files_per_proc=FILES_PER_NODE, ops=("create", "stat"),
    ))


def main():
    cfg = CofsConfig()
    policies = {
        "identity": IdentityPlacementPolicy(cfg),
        "hash": HashPlacementPolicy(cfg, randomize=False),
        "hash+rand": HashPlacementPolicy(cfg, randomize=True),
    }

    print(f"{NODES} nodes x {FILES_PER_NODE} creates in a shared dir\n")
    print(f"{'layout policy':<14}{'create':>10}{'stat':>10}")
    print("-" * 34)

    bare = measure(PfsStack(build_flat_testbed(n_clients=NODES)))
    print(f"{'(pure GPFS)':<14}{bare.mean_ms('create'):>8.2f}ms"
          f"{bare.mean_ms('stat'):>8.2f}ms")

    for name, policy in policies.items():
        testbed = build_flat_testbed(n_clients=NODES, with_mds=True)
        stack = CofsStack(testbed, policy=policy)
        res = measure(stack)
        print(f"{name:<14}{res.mean_ms('create'):>8.2f}ms"
              f"{res.mean_ms('stat'):>8.2f}ms")

    print(
        "\nIdentity placement keeps all of COFS's machinery but none of its\n"
        "benefit - creates collapse exactly like pure GPFS. The hashed\n"
        "reorganization is what buys the speedup; randomization spreads\n"
        "same-node files for later parallel access."
    )


if __name__ == "__main__":
    main()
