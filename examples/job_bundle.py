#!/usr/bin/env python3
"""A bundle of small jobs writing results into one shared directory.

The paper's second motivating workload (§I): users launch large bunches of
loosely coupled jobs, all configured to drop their output files into the
same results directory — which, from the file system's perspective, looks
exactly like a parallel application creating files in a shared directory.

Run:  python examples/job_bundle.py
"""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.workloads.apps import JobBundleConfig, run_job_bundle

NODES = 8
JOBS = 128


def main():
    config = JobBundleConfig(jobs=JOBS, nodes=NODES, job_compute_ms=20.0)
    print(f"{JOBS} small jobs over {NODES} nodes, all writing to "
          f"{config.directory}\n")

    bare = run_job_bundle(
        PfsStack(build_flat_testbed(n_clients=NODES)), config
    )
    cofs = run_job_bundle(
        CofsStack(build_flat_testbed(n_clients=NODES, with_mds=True)), config
    )

    print(f"{'system':<12}{'makespan':>12}{'jobs/s':>10}{'mean job':>12}")
    print("-" * 46)
    print(f"{'pure GPFS':<12}{bare.makespan_ms:>10.1f}ms"
          f"{bare.jobs_per_second:>10.1f}{bare.job_ms.mean:>10.2f}ms")
    print(f"{'COFS':<12}{cofs.makespan_ms:>10.1f}ms"
          f"{cofs.jobs_per_second:>10.1f}{cofs.job_ms.mean:>10.2f}ms")
    print(
        "\nNote this is throughput, not just latency: the shared directory\n"
        "serializes the bundle on pure GPFS, while COFS lets the whole\n"
        "bundle land in parallel."
    )


if __name__ == "__main__":
    main()
