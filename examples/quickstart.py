#!/usr/bin/env python3
"""Quickstart: mount COFS over a simulated parallel FS and see the win.

Builds the paper's testbed twice — once with clients on bare GPFS-like
storage, once with the COFS virtualization layer — runs a small parallel
metadata benchmark on a shared directory, and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.workloads import MetaratesConfig, run_metarates

NODES = 4
FILES_PER_NODE = 256


def measure(stack):
    config = MetaratesConfig(
        nodes=NODES, files_per_proc=FILES_PER_NODE,
        ops=("create", "stat", "utime", "open"),
    )
    return run_metarates(stack, config)


def main():
    print(f"{NODES} nodes creating/accessing {FILES_PER_NODE} files each "
          "in one shared directory\n")

    bare = measure(PfsStack(build_flat_testbed(n_clients=NODES)))
    cofs = measure(CofsStack(
        build_flat_testbed(n_clients=NODES, with_mds=True)
    ))

    print(f"{'operation':<12}{'pure GPFS':>12}{'COFS':>12}{'speedup':>10}")
    print("-" * 46)
    for op in ("create", "stat", "utime", "open"):
        g = bare.mean_ms(op)
        c = cofs.mean_ms(op)
        print(f"{op:<12}{g:>10.2f}ms{c:>10.2f}ms{g / c:>9.1f}x")
    print(
        "\nThe virtualization layer turns one contended shared directory\n"
        "into many small per-(node, process) directories underneath, and\n"
        "serves pure metadata from its own service - so the underlying\n"
        "file system never leaves its optimized regime."
    )


if __name__ == "__main__":
    main()
