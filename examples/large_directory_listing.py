#!/usr/bin/env python3
"""`ls -l` on a big shared directory — metadata reads at scale.

A directory traversal (readdir + stat of every entry) from a node that did
NOT create the files is the classic "login node feels slow" case from the
paper's production observations.  COFS serves the listing and the
attributes from its metadata service without touching the underlying file
system at all.

Run:  python examples/large_directory_listing.py
"""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack

ENTRIES = 2048


def build_tree(stack, fs):
    def setup():
        yield from fs.mkdir("/project")
        for i in range(ENTRIES):
            fh = yield from fs.create(f"/project/data.{i:05d}")
            yield from fs.close(fh)

    stack.testbed.sim.run_process(setup())


def ls_l(stack, fs):
    sim = stack.testbed.sim

    def listing():
        t0 = sim.now
        names = yield from fs.readdir("/project")
        for name in names:
            yield from fs.stat(f"/project/{name}")
        return sim.now - t0

    return sim.run_process(listing())


def main():
    print(f"`ls -l` of a {ENTRIES}-entry shared directory, from a node "
          "that did not create it\n")

    bare_stack = PfsStack(build_flat_testbed(n_clients=2))
    build_tree(bare_stack, bare_stack.mount(0))
    bare_ms = ls_l(bare_stack, bare_stack.mount(1))

    cofs_stack = CofsStack(build_flat_testbed(n_clients=2, with_mds=True))
    build_tree(cofs_stack, cofs_stack.mount(0))
    cofs_ms = ls_l(cofs_stack, cofs_stack.mount(1))

    print(f"{'system':<12}{'wall time':>12}{'per entry':>12}")
    print("-" * 36)
    print(f"{'pure GPFS':<12}{bare_ms:>10.1f}ms{bare_ms / ENTRIES:>10.3f}ms")
    print(f"{'COFS':<12}{cofs_ms:>10.1f}ms{cofs_ms / ENTRIES:>10.3f}ms")
    print(f"\nListing is {bare_ms / cofs_ms:.1f}x faster through COFS.")


if __name__ == "__main__":
    main()
