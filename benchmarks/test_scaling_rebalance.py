"""EXP-S2 — parallel mirror broadcasts + online re-partitioning.

Asserts the two effects BENCH_PR4.json records: overlapped mirror
broadcasts cut replicated mkdir/rmdir latency at high shard counts, and
a hash-collision-skewed workload's throughput recovers once the
rebalancer re-homes the hot directories.
"""

from repro.bench.experiments import run_scaling_rebalance


def test_scaling_rebalance(benchmark):
    out = benchmark.pedantic(
        lambda: run_scaling_rebalance(
            print_report=True, shard_counts=(1, 2, 4)),
        rounds=1, iterations=1,
    )
    r = out["results"]

    # (a) Replicated-mutation latency: serial mirror chains pay the sum
    # of the peer round trips, overlapped broadcasts roughly the max.
    for op in ("mkdir", "rmdir"):
        # Latency grows with shard count under serial chains ...
        assert r[(op, 2, "serial")] > r[(op, 1, "serial")] * 1.5, op
        assert r[(op, 4, "serial")] > r[(op, 2, "serial")] * 1.3, op
        # ... parallel broadcasts claw a real margin back at 4 shards
        # (3 overlapped mirrors) ...
        assert r[(op, 4, "parallel")] < r[(op, 4, "serial")] * 0.75, op
        # ... and with a single peer there is nothing to overlap.
        assert r[(op, 2, "parallel")] == r[(op, 2, "serial")], op

    # (b) The skewed workload is stuck at one shard's ceiling no matter
    # how many shards exist; after online re-partitioning it recovers.
    assert abs(r[("skew-stat", 4, "before")] /
               r[("skew-stat", 2, "before")] - 1.0) < 0.05
    for n_shards in (2, 4):
        assert r[("skew-moves", n_shards)] > 0, n_shards
        assert r[("skew-stat", n_shards, "after")] > \
            r[("skew-stat", n_shards, "before")] * 1.5, n_shards
