"""EXP-S5 — asynchronous group commit vs the log-force ceiling.

Asserts the headline of the async-commit machinery: synchronous
metadata mutations are pinned near the per-disk journal-force rate no
matter how many shards exist, and moving the force off the critical
path (``CofsConfig(async_commit=True)``) lets the same mutation storm
scale with shards — while the read-side control stays mode-agnostic
and every async history passes the TraceChecker (the experiment runs
it internally, durable-before-dependent-ack rule included).
"""

from repro.bench.experiments import run_scaling_async


def test_scaling_async(benchmark):
    out = benchmark.pedantic(
        lambda: run_scaling_async(print_report=True, shard_counts=(1, 2, 4)),
        rounds=1, iterations=1,
    )
    r = out["results"]

    # The synchronous ceiling: every mutation pays its own ~1.2 ms
    # force, so 4x the shards buys < 1.3x the throughput (measured
    # 4.9k -> 6.0k/s) — disks are added, headroom per disk is not.
    sync_1 = r[("mdcreate", 1, "sync")]
    sync_4 = r[("mdcreate", 4, "sync")]
    assert sync_4 <= sync_1 * 1.3

    # The async headline: >= 2x the sync rate at 4 shards (measured
    # 2.9x, 17.6k vs 6.0k/s) and >= 12k/s in absolute terms.
    assert r[("mdcreate", 4, "async")] >= 2.0 * sync_4
    assert r[("mdcreate", 4, "async")] >= 12_000

    # ... and the async curve actually scales: strictly monotonic in
    # shards, since the batcher turned forces from a per-op cost into a
    # per-shard background amortization.
    async_rates = [r[("mdcreate", n, "async")] for n in (1, 2, 4)]
    assert async_rates[0] < async_rates[1] < async_rates[2], async_rates
    utime_rates = [r[("utime", n, "async")] for n in (1, 2, 4)]
    assert utime_rates[0] < utime_rates[1] < utime_rates[2], utime_rates

    # The read side never forces, so both modes must agree on stat.
    for n_shards in (1, 2, 4):
        sync_stat = r[("stat", n_shards, "sync")]
        async_stat = r[("stat", n_shards, "async")]
        assert abs(sync_stat - async_stat) <= 0.05 * sync_stat, n_shards

    # Deferral is the mechanism, not a side effect: every async leg
    # deferred acks, no sync leg ever did (asserted in the experiment,
    # restated here against the returned results).
    for n_shards in (1, 2, 4):
        assert r[("deferred_acks", n_shards, "async")] > 0, n_shards
        assert r[("deferred_acks", n_shards, "sync")] == 0, n_shards
