"""EXP-F2 — Fig. 2: parallel metadata behaviour of GPFS."""

from repro.bench.experiments import run_fig2


def test_fig2(benchmark):
    out = benchmark.pedantic(
        lambda: run_fig2(print_report=True), rounds=1, iterations=1
    )
    r = out["results"]

    # Parallel creates collapse: > 20 ms at 4 nodes, more at 8 (paper: >20,
    # >30), versus ~2 ms on a single node (Fig 1).
    assert r[("create", 4, 1024)] > 15
    assert r[("create", 8, 1024)] > r[("create", 4, 1024)] * 1.3

    # The number of files matters far less than the number of nodes.
    for nodes in (4, 8):
        small = r[("create", nodes, 1024)]
        big = r[("create", nodes, out["totals"][-1])]
        assert big < small * 2.5

    # Non-create ops at 1024 files pay creator-revocation queues, growing
    # with node count (paper: ~10 ms at 4 nodes, 15-20 ms at 8).
    assert 4 < r[("stat", 4, 1024)] < 16
    assert r[("stat", 8, 1024)] > r[("stat", 4, 1024)] * 1.5

    # With more files the creator's cache cap is exceeded and times converge
    # to the clean-fetch plateau.
    assert r[("stat", 8, 4096)] < r[("stat", 8, 1024)]
