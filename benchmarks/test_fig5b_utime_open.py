"""EXP-F5b — §IV-A prose: utime and open/close, GPFS vs COFS.

The paper reports these in text: "times for utime in pure GPFS stabilize
about 6-7 ms, compared to 4 ms when using COFS; values obtained for
open/close are very similar to stat results, for both pure GPFS and COFS."
"""

from repro.bench.experiments import run_fig5b


def test_fig5b(benchmark):
    out = benchmark.pedantic(
        lambda: run_fig5b(print_report=True), rounds=1, iterations=1
    )
    utime = out["utime"]["results"]
    open_close = out["open"]["results"]
    plateau = 2048

    # utime stabilizes higher for GPFS than for COFS at large directories.
    for nodes in (4, 8):
        assert utime[("pfs", nodes, plateau)] > \
            utime[("cofs", nodes, plateau)], nodes

    # open/close closely resembles stat for pure GPFS (same token + fetch
    # path); for COFS it adds the underlying open, staying well below GPFS
    # in the contended small-directory regime.
    assert open_close[("pfs", 8, 128)] > 10
    assert open_close[("cofs", 8, 128)] < open_close[("pfs", 8, 128)] / 2
