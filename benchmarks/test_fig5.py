"""EXP-F5 — Fig. 5: stat time, pure GPFS vs COFS over GPFS."""

from repro.bench.experiments import run_fig5


def test_fig5(benchmark):
    out = benchmark.pedantic(
        lambda: run_fig5(print_report=True), rounds=1, iterations=1
    )
    r = out["results"]
    sweep = out["files_per_node"]

    # GPFS: a first phase of large times while the creator's cached tokens
    # cover the files, converging once files/node exceeds the cache span.
    assert r[("pfs", 8, 128)] > 10         # 8 nodes x 128 = 1024 files
    assert r[("pfs", 8, 2048)] < r[("pfs", 8, 128)]

    # COFS reduces stat beyond ~512 files/node to ~1 ms (paper: 7->1 ms at 8
    # nodes, 5->1 at 4 nodes).
    for nodes in (4, 8):
        assert r[("cofs", nodes, 2048)] < 2.5, nodes
        assert r[("pfs", nodes, 2048)] > r[("cofs", nodes, 2048)] * 1.5

    # Even for small directories COFS is comparable or better.
    for fpn in sweep:
        assert r[("cofs", 8, fpn)] <= r[("pfs", 8, fpn)] * 1.1, fpn
