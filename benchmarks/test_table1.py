"""EXP-T1 — Table I: impact of COFS on data transfers, by use pattern."""

from repro.bench.experiments import run_table1
from repro.units import MB


def test_table1(benchmark):
    out = benchmark.pedantic(
        lambda: run_table1(print_report=True), rounds=1, iterations=1
    )
    cells = out["cells"]
    small = 256 * MB   # -> 32-64 MB per node at 4-8 nodes: cache-resident

    def w(target, pattern, nodes, agg, system):
        return cells[(target, pattern, nodes, agg, system)][0]

    def r(target, pattern, nodes, agg, system):
        return cells[(target, pattern, nodes, agg, system)][1]

    # Row 1 (seq read, separate files): COFS comparable except for small
    # per-node files, where GPFS serves from the local cache and COFS pays
    # an important slowdown.
    assert r("separate", "seq", 8, small, "pfs") > \
        r("separate", "seq", 8, small, "cofs") * 1.5
    big = out["sizes"][-1]
    assert r("separate", "seq", 1, big, "cofs") > \
        r("separate", "seq", 1, big, "pfs") * 0.85

    # Row 3 (seq write, separate files): COFS drawback on a single node...
    assert w("separate", "seq", 1, big, "cofs") < \
        w("separate", "seq", 1, big, "pfs")
    # ...but the relative COFS/GPFS ratio improves as nodes come in (the
    # paper saw an outright reversal; our 64 MB page pool absorbs much of
    # the open stagger at these sizes, so the trend is softer — see
    # EXPERIMENTS.md deviation 5).
    ratio_4n = w("separate", "seq", 4, small, "cofs") / \
        w("separate", "seq", 4, small, "pfs")
    ratio_8n = w("separate", "seq", 8, small, "cofs") / \
        w("separate", "seq", 8, small, "pfs")
    ratio_1n = w("separate", "seq", 1, small, "cofs") / \
        w("separate", "seq", 1, small, "pfs")
    assert ratio_4n > ratio_1n
    assert ratio_8n > 0.85

    # Shared-file rows: comparable throughout (within ~25%).
    for pattern in ("seq", "random"):
        for nodes in (4, 8):
            gpfs_w = w("shared", pattern, nodes, big, "pfs")
            cofs_w = w("shared", pattern, nodes, big, "cofs")
            assert cofs_w > gpfs_w * 0.7, (pattern, nodes)
            gpfs_r = r("shared", pattern, nodes, big, "pfs")
            cofs_r = r("shared", pattern, nodes, big, "cofs")
            assert cofs_r > gpfs_r * 0.6, (pattern, nodes)
