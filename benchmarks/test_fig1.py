"""EXP-F1 — Fig. 1: effect of directory size on GPFS, single node."""

from repro.bench.experiments import run_fig1


def test_fig1(benchmark):
    out = benchmark.pedantic(
        lambda: run_fig1(print_report=True), rounds=1, iterations=1
    )
    r = out["results"]
    sizes = out["sizes"]
    small, large = sizes[0], sizes[-1]

    # Below ~1024 entries, stat/utime/open run at near-local speed...
    for op in ("stat", "utime", "open"):
        assert r[(op, 1, 512)] < 0.6, op
    # ...and drop to network rates beyond the cache cliff.
    for op in ("stat", "utime", "open"):
        assert r[(op, 1, large)] > 4 * r[(op, 1, 512)], op
        assert r[(op, 1, large)] > 1.5

    # Creates start just under ~2 ms and rise steadily past 512 entries.
    assert 1.0 < r[("create", 1, 512)] < 3.0
    assert r[("create", 1, large)] > r[("create", 1, 512)] * 1.4

    # A second process slightly compensates beyond the cliff (request
    # batching), and never makes things drastically worse below it.
    assert r[("stat", 2, large)] <= r[("stat", 1, large)] * 1.05
    assert r[("stat", 2, small)] < 1.0
