"""Benchmark-suite configuration.

Every benchmark regenerates one figure/table of the paper (see DESIGN.md §5)
and asserts its qualitative shape: who wins, roughly by how much, where the
cliffs fall.  Simulated experiments are deterministic, so each benchmark
runs a single round (`pedantic(rounds=1)`); the pytest-benchmark timing
shows the wall cost of regenerating the figure.

Set REPRO_FULL=1 to run the paper's complete parameter grids.
"""
