"""EXP-A1 — ablation: what the placement policy contributes.

Separates the *cost* of virtualization from the *benefit* of
reorganization: the identity policy keeps COFS's interposition and metadata
service but mirrors the user's layout underneath, so the underlying file
system sees the same shared-directory storm.
"""

from repro.bench.experiments import run_ablation_placement


def test_ablation_placement(benchmark):
    out = benchmark.pedantic(
        lambda: run_ablation_placement(print_report=True),
        rounds=1, iterations=1,
    )
    r = out["results"]

    # Identity placement = GPFS's create collapse plus the overhead.
    assert r[("identity", "create")] > r[("gpfs", "create")] * 0.8

    # The hash reorganization is what buys the speedup.
    assert r[("hash", "create")] < r[("gpfs", "create")] / 3
    assert r[("hash+rand", "create")] < r[("gpfs", "create")] / 3

    # Stats are MDS-served under every policy.
    for policy in ("identity", "hash", "hash+rand"):
        assert r[(policy, "stat")] < 1.5, policy
