"""EXP-S4 — giant shared directory vs intra-directory splitting.

Asserts the headline of the split machinery: a create storm into ONE
shared directory is pinned to the directory owner's shard no matter how
many shards exist, and hash-partitioning the directory's entries across
the tier makes the same storm scale.
"""

from repro.bench.experiments import run_scaling_split


def test_scaling_split(benchmark):
    out = benchmark.pedantic(
        lambda: run_scaling_split(print_report=True, shard_counts=(1, 2, 4)),
        rounds=1, iterations=1,
    )
    r = out["results"]

    # Whole-directory placement is a ceiling: adding shards buys the
    # one-directory storm nothing at all.
    base = r[("mdcreate", 1, "unsplit")]
    for n_shards in (2, 4):
        assert r[("mdcreate", n_shards, "unsplit")] == base, n_shards

    # The rebalancer found and split the hotspot on its own ...
    for n_shards in (2, 4):
        assert r[("split-dirs", n_shards)] == 1, n_shards
    # ... and the split storm scales: ≥1.8x ops/s going 1 -> 4 shards
    # (measured 3.0x), with 2 shards already beating the whole-dir
    # ceiling by a wide margin.
    assert r[("mdcreate", 4, "split")] >= base * 1.8
    assert r[("mdcreate", 2, "split")] >= base * 1.5

    # The read side must never pay for the split: the stat phase is
    # latency-bound (no queueing to dissolve), so split placement holds
    # it exactly at the whole-directory rate.
    stat_base = r[("stat", 1, "unsplit")]
    for n_shards in (2, 4):
        assert r[("stat", n_shards, "split")] >= stat_base * 0.99, n_shards
