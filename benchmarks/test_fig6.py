"""EXP-F6 — Fig. 6: operation times on the large hierarchical cluster.

The paper's 64-node cluster chained several blade centers through limited
uplinks.  The default benchmark runs 32 nodes (REPRO_FULL=1 for 64); the
qualitative claim is the same at both scales: "Pure GPFS shows considerably
higher operation times due to inter-node conflicts when accessing a shared
directory, while COFS seems to be able to avoid such conflicts."
"""

from repro.bench.experiments import run_fig6


def test_fig6(benchmark):
    out = benchmark.pedantic(
        lambda: run_fig6(print_report=True), rounds=1, iterations=1
    )
    r = out["results"]

    # COFS beats GPFS on every operation at this scale.
    for op in ("create", "stat", "utime", "open"):
        assert r[("cofs", op)] < r[("pfs", op)], op

    # The create gap is dramatic (pure GPFS serializes the shared dir).
    assert r[("pfs", "create")] / r[("cofs", "create")] > 5

    # COFS metadata ops stay in the single-digit-ms band even here.
    assert r[("cofs", "stat")] < 5
    assert r[("cofs", "utime")] < 12
