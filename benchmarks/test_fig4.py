"""EXP-F4 — Fig. 4: create time, pure GPFS vs COFS over GPFS."""

from repro.bench.experiments import run_fig4


def test_fig4(benchmark):
    out = benchmark.pedantic(
        lambda: run_fig4(print_report=True), rounds=1, iterations=1
    )
    r = out["results"]
    sweep = out["files_per_node"]

    for fpn in sweep:
        # Pure GPFS: shared-directory creates collapse with node count.
        assert r[("pfs", 4, fpn)] > 12, fpn
        assert r[("pfs", 8, fpn)] > r[("pfs", 4, fpn)] * 1.2, fpn
        # COFS: creates stay in the low single-digit band (paper: 2-5 ms)
        # and the 4->8 node scaling penalty is eliminated.
        assert r[("cofs", 4, fpn)] < 8, fpn
        assert r[("cofs", 8, fpn)] < r[("cofs", 4, fpn)] * 1.6, fpn
        # Headline: a substantial speedup (paper: 5-10x), growing with N.
        # At 32 files/node COFS's one-time bucket mkdirs are poorly
        # amortized (see EXPERIMENTS.md), so the bar is lower there.
        floor_4n = 2 if fpn <= 32 else 3
        floor_8n = 4 if fpn <= 32 else 5
        assert r[("pfs", 4, fpn)] / r[("cofs", 4, fpn)] > floor_4n, fpn
        assert r[("pfs", 8, fpn)] / r[("cofs", 8, fpn)] > floor_8n, fpn
