"""EXP-S1 — beyond the paper: metadata throughput vs MDS shard count."""

from repro.bench.experiments import run_scaling_mds


def test_scaling_mds(benchmark):
    out = benchmark.pedantic(
        lambda: run_scaling_mds(print_report=True), rounds=1, iterations=1
    )
    r = out["results"]
    shards = out["shards"]
    assert shards[0] == 1 and len(shards) >= 3

    for prev, cur in zip(shards, shards[1:]):
        # Headline: aggregate throughput of the create/stat/utime mix grows
        # monotonically with shard count, with real margin.
        assert r[("metarates", "mix", cur)] > \
            r[("metarates", "mix", prev)] * 1.15, (prev, cur)
        # stat is pure MDS CPU: near-linear scaling per doubling.
        assert r[("metarates", "stat", cur)] > \
            r[("metarates", "stat", prev)] * 1.5, (prev, cur)
        # utime (log-force bound) must not regress.
        assert r[("metarates", "utime", cur)] >= \
            r[("metarates", "utime", prev)], (prev, cur)
        # create is bounded by the underlying FS: sharding the metadata
        # tier must leave it unchanged (±10%).
        ratio = r[("metarates", "create", cur)] / \
            r[("metarates", "create", prev)]
        assert 0.9 < ratio < 1.1, (prev, cur, ratio)
        # the metadata-only create must not regress with shards (it is
        # log-force bound, scaling like utime rather than stat).
        assert r[("metarates", "mdcreate", cur)] >= \
            r[("metarates", "mdcreate", prev)], (prev, cur)
        # the data-bound production trace must not regress when the
        # namespace is partitioned (±5% latency, same job count ±2%).
        jratio = r[("traces", "job_ms", cur)] / r[("traces", "job_ms", prev)]
        assert 0.95 < jratio < 1.05, (prev, cur, jratio)
        assert abs(r[("traces", "jobs", cur)] -
                   r[("traces", "jobs", prev)]) <= \
            0.02 * r[("traces", "jobs", prev)] + 2, (prev, cur)

    first, last = shards[0], shards[-1]
    assert r[("metarates", "mix", last)] > r[("metarates", "mix", first)] * 2

    # The MDS-ceiling probe: with the underlying object out of the
    # picture, the metadata tier alone creates several times faster than
    # the underlying-FS-bound full create at every shard count.
    for n_shards in shards:
        assert r[("metarates", "mdcreate", n_shards)] > \
            r[("metarates", "create", n_shards)] * 3, n_shards
