"""EXP-A2 — ablation: metadata-service log durability.

The paper's Mnesia service can log update transactions synchronously or
dump them lazily; the reproduction defaults to synchronous forces (which is
what reproduces the paper's ~4 ms utime vs ~1 ms stat asymmetry).  This
ablation shows what each choice costs.
"""

from repro.bench.experiments import run_ablation_mds


def test_ablation_mds(benchmark):
    out = benchmark.pedantic(
        lambda: run_ablation_mds(print_report=True), rounds=1, iterations=1
    )
    r = out["results"]

    # The serial utime path exposes the full per-transaction force cost.
    assert r[("sync-log", "utime")] > r[("async-log", "utime")] * 2

    # Creates group-commit under parallel load, so the difference there is
    # much smaller — the reorganized underlying create dominates.
    assert r[("sync-log", "create")] < r[("async-log", "create")] * 1.5
